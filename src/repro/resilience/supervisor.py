"""Supervised worker subprocesses: heartbeats, restarts, circuit breakers.

The service's crash-only substrate.  A :class:`SupervisedPool` owns a
fixed set of **spawn**-based worker subprocesses; batches ship to them
over pipes and verdicts come back the same way.  Each worker runs a
heartbeat thread, so the pool's monitor can tell three failure modes
apart and survive all of them:

* **death** — the process exited (crash, ``os._exit``, SIGKILL): the
  monitor notices the closed pipe / exit code, fails the in-flight
  task back to its caller, and schedules a restart;
* **hang** — the process is alive but heartbeats stopped (a stuck
  kernel, a runaway loop): the monitor SIGKILLs it after
  ``heartbeat_timeout`` and treats it as a death;
* **restart storm** — a worker that keeps dying escalates through
  capped exponential backoff (:class:`BackoffPolicy`) into a per-worker
  :class:`CircuitBreaker`: *open* stops restarts for a cool-down,
  *half-open* admits one probe restart, and a surviving probe closes
  the breaker again.

Tasks are retried on death: a task whose worker dies is re-dispatched
to another worker until ``max_task_deaths``, at which point the pool
declares the *task* poisonous and raises :class:`WorkerDeathError` —
the service routes that to the dead-letter queue with a
``worker_death`` verdict, so one hostile batch can never wedge the
pool.  Handler exceptions (the task failed, the worker is fine) come
back as :class:`WorkerTaskError` without costing the worker its life.

Workers are described by a :class:`HandlerSpec` — a dotted-path factory
plus keyword arguments — because spawn children cannot unpickle
closures: each child imports the factory, builds its handler once, and
then maps payload dicts to result dicts for its whole life.  Worker
fault injection (SIGKILL / heartbeat-stall hang) is seeded through
:class:`repro.resilience.faults.FaultPlan` worker decisions, keyed by
the task's fault key, so chaos runs are deterministic.
"""

from __future__ import annotations

import importlib
import multiprocessing
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.obs.metrics import MetricsRegistry
from repro.util import timing
from repro.util.rng import SplitMix64, derive_seed

#: Worker states surfaced by :meth:`SupervisedPool.stats` (and the
#: ``repro top`` supervision panel).
WORKER_STARTING = "starting"
WORKER_ALIVE = "alive"
WORKER_RESTARTING = "restarting"
WORKER_BREAKER_OPEN = "breaker_open"
WORKER_STOPPED = "stopped"

#: Circuit-breaker states.
BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half_open"


class WorkerDeathError(RuntimeError):
    """A task's worker died ``max_task_deaths`` times — the task is poisonous."""

    def __init__(self, message: str, deaths: int = 0):
        super().__init__(message)
        self.deaths = deaths


class WorkerTaskError(RuntimeError):
    """The handler raised inside the worker (the worker itself survived)."""


class PoolClosedError(RuntimeError):
    """A task was offered to a pool that is shutting down."""


@dataclass(frozen=True)
class HandlerSpec:
    """A spawn-safe recipe for the worker's payload handler.

    ``factory`` is a dotted path (``"package.module:attribute"``) to a
    zero-state factory callable; each worker child imports it and calls
    ``factory(**kwargs)`` once to obtain the actual
    ``handler(payload: dict) -> dict``.  Keeping the recipe as strings
    and plain data is what makes it picklable for the spawn context.
    """

    factory: str
    kwargs: Dict[str, Any] = field(default_factory=dict)

    def resolve(self) -> Callable[[Dict[str, Any]], Dict[str, Any]]:
        """Import the factory and build the handler (runs in the child)."""
        module_name, _, attr = self.factory.partition(":")
        if not attr:
            module_name, _, attr = self.factory.rpartition(".")
        module = importlib.import_module(module_name)
        factory = getattr(module, attr)
        return factory(**self.kwargs)


def echo_handler_factory(**extra: Any) -> Callable[[Dict[str, Any]], Dict[str, Any]]:
    """Reference handler factory: echoes the payload (tests and smokes).

    The returned handler merges ``extra`` into a copy of the payload
    and, when the payload carries ``"fail"``, raises — exercising the
    :class:`WorkerTaskError` path without a real mapper.  A numeric
    ``"sleep_s"`` stalls the handler that long first, so tests can hold
    a worker busy deterministically.  The result carries the child's
    ``"pid"`` so placement tests can tell workers apart.
    """
    def handler(payload: Dict[str, Any]) -> Dict[str, Any]:
        """Echo ``payload`` (plus factory extras) back to the parent."""
        if payload.get("sleep_s"):
            time.sleep(float(payload["sleep_s"]))
        if payload.get("fail"):
            raise RuntimeError(str(payload["fail"]))
        result = dict(payload)
        result.update(extra)
        result["echo"] = True
        result["pid"] = os.getpid()
        return result
    return handler


@dataclass(frozen=True)
class BackoffPolicy:
    """Capped exponential restart backoff with deterministic jitter.

    ``delay(attempt)`` for attempt 1, 2, … is ``base * 2**(attempt-1)``
    scaled by a seeded jitter factor in ``[1, 2)``, clamped to ``cap``.
    Because the jittered value for attempt *n* is always below the raw
    value for attempt *n+1*, the sequence is monotone non-decreasing
    until it saturates at ``cap`` — and it is a pure function of
    ``(seed, attempt)``, so chaos runs replay identical schedules.
    """

    base: float = 0.05
    cap: float = 2.0
    seed: int = 0

    def __post_init__(self):
        if self.base <= 0:
            raise ValueError("base must be positive")
        if self.cap < self.base:
            raise ValueError("cap must be >= base")

    def delay(self, attempt: int) -> float:
        """Seconds to wait before restart ``attempt`` (1-based)."""
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        raw = self.base * (2.0 ** (attempt - 1))
        rng = SplitMix64(derive_seed(self.seed, "backoff", attempt))
        return min(self.cap, raw * (1.0 + rng.random()))


@dataclass(frozen=True)
class BreakerConfig:
    """Tunables for one worker's restart circuit breaker.

    ``failure_threshold`` consecutive deaths open the breaker;
    restarts are then refused for ``open_duration`` seconds, after
    which one half-open probe restart is admitted.  The probe worker
    surviving a task closes the breaker; dying re-opens it.
    """

    failure_threshold: int = 5
    open_duration: float = 1.0


class CircuitBreaker:
    """The open → half-open → closed restart gate for one worker.

    Not thread-safe by itself: the pool's monitor thread is the only
    caller.  ``clock`` is injectable so tests can drive the cool-down
    without sleeping.
    """

    def __init__(self, config: Optional[BreakerConfig] = None,
                 clock: Callable[[], float] = timing.now):
        self.config = config if config is not None else BreakerConfig()
        self._clock = clock
        self.state = BREAKER_CLOSED
        self.consecutive_failures = 0
        self._opened_at = 0.0

    def record_failure(self) -> None:
        """Count one worker death; may trip the breaker open."""
        self.consecutive_failures += 1
        if self.state == BREAKER_HALF_OPEN:
            # The probe died: straight back to open, fresh cool-down.
            self.state = BREAKER_OPEN
            self._opened_at = self._clock()
        elif (self.state == BREAKER_CLOSED
              and self.consecutive_failures >= self.config.failure_threshold):
            self.state = BREAKER_OPEN
            self._opened_at = self._clock()

    def record_success(self) -> None:
        """Count one completed task; a surviving probe closes the breaker."""
        self.consecutive_failures = 0
        if self.state == BREAKER_HALF_OPEN:
            self.state = BREAKER_CLOSED

    def allow_restart(self) -> bool:
        """May the supervisor restart this worker right now?

        In the open state the answer flips to True once the cool-down
        elapses, transitioning to half-open (the caller's restart is
        the probe).
        """
        if self.state == BREAKER_CLOSED:
            return True
        if self.state == BREAKER_OPEN:
            if self._clock() - self._opened_at >= self.config.open_duration:
                self.state = BREAKER_HALF_OPEN
                return True
            return False
        # Half-open: the single probe restart was already admitted.
        return False


class _Task:
    """One payload in flight through the pool (parent-side bookkeeping)."""

    _ids = 0
    _ids_lock = threading.Lock()

    def __init__(self, payload: Dict[str, Any], fault_key: int):
        with _Task._ids_lock:
            _Task._ids += 1
            self.task_id = _Task._ids
        self.payload = payload
        self.fault_key = fault_key
        self.deaths = 0
        self.done = threading.Event()
        self.outcome: Optional[str] = None  # "result" | "error" | "death"
        self.result: Optional[Dict[str, Any]] = None
        self.error = ""


class _Worker:
    """Parent-side state for one worker slot."""

    def __init__(self, index: int, breaker: CircuitBreaker):
        self.index = index
        self.breaker = breaker
        self.process: Optional[multiprocessing.process.BaseProcess] = None
        self.conn = None
        self.state = WORKER_STOPPED
        self.ready = False
        self.last_beat = 0.0
        self.restarts = 0
        self.restart_at = 0.0
        self.task: Optional[_Task] = None


def _worker_main(conn, spec: HandlerSpec, heartbeat_interval: float,
                 fault_plan) -> None:
    """Worker child entry point: heartbeats plus a task loop.

    Runs in the spawned subprocess.  A dedicated thread beats on the
    pipe every ``heartbeat_interval`` seconds; the main loop resolves
    the handler once and then serves tasks until an exit message (or a
    closed pipe).  Injected worker faults fire *here*: a kill fault is
    a hard ``os._exit`` (indistinguishable from a crash), a hang fault
    suppresses heartbeats and stalls the loop so the parent's liveness
    monitor has something real to catch.
    """
    send_lock = threading.Lock()
    hang_until = [0.0]
    stop = threading.Event()

    def beat() -> None:
        seq = 0
        while not stop.is_set():
            if time.monotonic() >= hang_until[0]:
                try:
                    with send_lock:
                        conn.send(("hb", seq))
                except (OSError, ValueError):  # qa: ignore[swallowed-worker-error] — pipe closed: parent is gone, heartbeats are moot
                    return
                seq += 1
            time.sleep(heartbeat_interval)

    heartbeat = threading.Thread(target=beat, name="supervisor-heartbeat",
                                 daemon=True)
    heartbeat.start()
    try:
        handler = spec.resolve()
        with send_lock:
            conn.send(("ready",))
        while True:
            if not conn.poll(0.05):
                continue
            message = conn.recv()
            if message[0] == "exit":
                break
            _, task_id, attempt, fault_key, payload = message
            if fault_plan is not None:
                faults = fault_plan.decide_worker(fault_key)
                armed = faults.sticky or attempt == 1
                if faults.kill and armed:
                    os._exit(137)
                if faults.hang > 0.0 and armed:
                    hang_until[0] = time.monotonic() + faults.hang
                    time.sleep(faults.hang)
            try:
                result = handler(payload)
                reply = ("result", task_id, result)
            except Exception as error:  # qa: ignore[broad-except] — reported to the supervisor over the pipe
                reply = ("error", task_id, f"{type(error).__name__}: {error}")
            with send_lock:
                conn.send(reply)
    except (EOFError, OSError, KeyboardInterrupt):
        pass  # parent went away or shutdown raced the pipe; just exit
    finally:
        stop.set()


class SupervisedPool:
    """A supervised pool of spawn-based worker subprocesses.

    ``run(payload, fault_key)`` blocks until some worker maps the
    payload to a result dict, retrying across worker deaths up to
    ``max_task_deaths``.  A monitor thread owns liveness: it drains
    heartbeats and results from every pipe, SIGKILLs hung workers,
    fails in-flight tasks back to their callers on death, and drives
    the backoff/breaker restart schedule.  ``shutdown(drain=True)``
    stops admission, waits for in-flight tasks, and tears the children
    down (join-with-timeout, then SIGKILL stragglers).
    """

    def __init__(self, spec: HandlerSpec, workers: int = 2,
                 heartbeat_interval: float = 0.05,
                 heartbeat_timeout: float = 1.0,
                 startup_timeout: float = 60.0,
                 task_heartbeat_deadline: Optional[float] = None,
                 max_task_deaths: int = 3,
                 backoff: Optional[BackoffPolicy] = None,
                 breaker: Optional[BreakerConfig] = None,
                 fault_plan=None,
                 registry: Optional[MetricsRegistry] = None):
        if workers < 1:
            raise ValueError("workers must be positive")
        if (task_heartbeat_deadline is not None
                and task_heartbeat_deadline <= 0):
            raise ValueError("task_heartbeat_deadline must be positive")
        self.spec = spec
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_timeout = heartbeat_timeout
        self.startup_timeout = startup_timeout
        self.task_heartbeat_deadline = task_heartbeat_deadline
        self.max_task_deaths = max_task_deaths
        self.backoff = backoff if backoff is not None else BackoffPolicy()
        self.breaker_config = breaker if breaker is not None else BreakerConfig()
        self.fault_plan = fault_plan
        self.registry = registry if registry is not None else MetricsRegistry()
        self._restart_counter = self.registry.counter(
            "supervisor_worker_restarts_total",
            "Worker subprocess deaths detected and restarted.",
        )
        self._ctx = multiprocessing.get_context("spawn")
        self._cond = threading.Condition()
        self._workers: List[_Worker] = [  # qa: guarded-by(self._cond)
            _Worker(index, CircuitBreaker(self.breaker_config))
            for index in range(workers)
        ]
        self._closed = False  # qa: guarded-by(self._cond)
        self._monitor_thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    # lifecycle

    def start(self) -> "SupervisedPool":
        """Spawn every worker and launch the liveness monitor."""
        with self._cond:
            for worker in self._workers:
                self._spawn(worker)
        self._monitor_thread = threading.Thread(
            target=self._monitor, name="supervisor-monitor", daemon=True
        )
        self._monitor_thread.start()
        return self

    def _spawn(self, worker: _Worker) -> None:
        # Callers hold self._cond.
        parent_conn, child_conn = self._ctx.Pipe()
        process = self._ctx.Process(
            target=_worker_main,
            args=(child_conn, self.spec, self.heartbeat_interval,
                  self.fault_plan),
            name=f"supervisor-worker-{worker.index}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        worker.process = process
        worker.conn = parent_conn
        worker.state = WORKER_STARTING
        worker.ready = False
        worker.last_beat = timing.now()

    def shutdown(self, drain: bool = True, timeout: float = 10.0) -> None:
        """Stop the pool: optionally drain in-flight tasks, then kill.

        With ``drain`` the pool waits (bounded by ``timeout``) for
        every in-flight task to settle before asking workers to exit;
        without it the children are killed immediately — the crash-only
        path, leaving recovery to the request journal.
        """
        deadline = timing.now() + timeout
        with self._cond:
            self._closed = True
            self._cond.notify_all()
            if drain:
                while (any(w.task is not None for w in self._workers)
                       and timing.now() < deadline):
                    self._cond.wait(0.05)
            workers = list(self._workers)
        for worker in workers:
            process, conn = worker.process, worker.conn
            if conn is not None and drain:
                try:
                    conn.send(("exit",))
                except (OSError, ValueError):
                    pass  # already dead; the kill below handles it
            if process is not None:
                process.join(timeout=0.5 if drain else 0.0)
                if process.is_alive():
                    process.kill()
                    process.join(timeout=1.0)
            if conn is not None:
                conn.close()
        with self._cond:
            for worker in self._workers:
                worker.state = WORKER_STOPPED
                if worker.task is not None:
                    self._fail_task(worker, "pool shut down")
        if self._monitor_thread is not None:
            self._monitor_thread.join(timeout=2.0)

    # ------------------------------------------------------------------
    # task execution

    def run(self, payload: Dict[str, Any], fault_key: int = 0,
            prefer: Optional[int] = None) -> Dict[str, Any]:
        """Map one payload on some worker; blocks until a verdict.

        ``prefer`` names a worker slot the task should run on when that
        slot is viable (soft shard affinity: per-process caches stay
        warm).  While the preferred worker is alive or on its way back
        (starting/restarting) the claim waits for it; once it degrades
        past recovery (breaker open, stopped) the task falls back to
        any idle worker so affinity never blocks progress.

        Retries transparently across worker deaths; raises
        :class:`WorkerDeathError` once the task has cost
        ``max_task_deaths`` workers their lives (the poisonous-batch
        verdict), :class:`WorkerTaskError` when the handler raised, and
        :class:`PoolClosedError` when the pool is shutting down.
        """
        if prefer is not None and not 0 <= prefer < len(self._workers):
            raise ValueError(
                f"prefer={prefer} out of range for {len(self._workers)} workers"
            )
        task = _Task(payload, fault_key)
        while True:
            worker = self._claim(task, prefer)
            try:
                worker.conn.send(("task", task.task_id, task.deaths + 1,
                                  task.fault_key, task.payload))
            except (OSError, ValueError):
                # The worker died between claim and send; the monitor
                # will fail the task back to us — fall through to wait.
                pass
            task.done.wait()
            if task.outcome == "result":
                return task.result
            if task.outcome == "error":
                raise WorkerTaskError(task.error)
            if self._is_closed():
                raise PoolClosedError("pool shut down mid-task")
            if task.deaths >= self.max_task_deaths:
                raise WorkerDeathError(
                    f"task killed {task.deaths} worker(s): {task.error}",
                    deaths=task.deaths,
                )
            task.done.clear()
            task.outcome = None

    def _is_closed(self) -> bool:
        with self._cond:
            return self._closed

    def _claim(self, task: _Task, prefer: Optional[int] = None) -> _Worker:
        """Block until an idle ready worker accepts ``task``.

        With ``prefer`` set, the preferred slot is claimed while it is
        viable (alive, starting, or scheduled for restart); only a slot
        degraded past quick recovery releases the task to any idle
        worker.
        """
        viable = (WORKER_ALIVE, WORKER_STARTING, WORKER_RESTARTING)
        with self._cond:
            while True:
                if self._closed:
                    raise PoolClosedError("pool is shut down")
                candidates = self._workers
                if prefer is not None:
                    preferred = self._workers[prefer]
                    if preferred.state in viable:
                        candidates = (preferred,)
                for worker in candidates:
                    if (worker.state == WORKER_ALIVE and worker.ready
                            and worker.task is None):
                        worker.task = task
                        return worker
                self._cond.wait(0.05)

    # ------------------------------------------------------------------
    # monitor

    def _monitor(self) -> None:
        """Liveness loop: pipes in, deaths out, restarts on schedule."""
        while True:
            with self._cond:
                if self._closed:
                    return
                now = timing.now()
                for worker in self._workers:
                    if worker.state in (WORKER_ALIVE, WORKER_STARTING):
                        self._drain_conn(worker, now)
                        self._check_liveness(worker, now)
                    elif worker.state == WORKER_RESTARTING:
                        if now >= worker.restart_at:
                            self._spawn(worker)
                    elif worker.state == WORKER_BREAKER_OPEN:
                        if worker.breaker.allow_restart():
                            # The half-open probe restart.
                            self._spawn(worker)
            time.sleep(self.heartbeat_interval / 2.0)

    def _drain_conn(self, worker: _Worker, now: float) -> None:
        # Callers hold self._cond.
        try:
            while worker.conn.poll(0):
                message = worker.conn.recv()
                kind = message[0]
                if kind in ("hb", "ready"):
                    worker.last_beat = now
                    if kind == "ready":
                        worker.ready = True
                        worker.state = WORKER_ALIVE
                        self._cond.notify_all()
                    continue
                task = worker.task
                if task is None or message[1] != task.task_id:
                    continue  # verdict for a task already failed over
                worker.last_beat = now
                if kind == "result":
                    task.outcome = "result"
                    task.result = message[2]
                else:
                    task.outcome = "error"
                    task.error = str(message[2])
                worker.task = None
                worker.breaker.record_success()
                task.done.set()
                self._cond.notify_all()
        except (EOFError, OSError):
            self._handle_death(worker, now)

    def _check_liveness(self, worker: _Worker, now: float) -> None:
        # Callers hold self._cond.
        if worker.process is not None and worker.process.exitcode is not None:
            self._handle_death(worker, now)
            return
        limit = (self.heartbeat_timeout if worker.ready
                 else self.startup_timeout)
        if worker.task is not None and self.task_heartbeat_deadline is not None:
            # A task is in flight: tolerate longer heartbeat gaps so a
            # handler pinned in a long non-yielding stretch (first-batch
            # shared-memory attach, index build) isn't misread as a hang.
            limit = max(limit, self.task_heartbeat_deadline)
        if now - worker.last_beat > limit:
            self._handle_death(worker, now)

    def _handle_death(self, worker: _Worker, now: float) -> None:
        # Callers hold self._cond.  Kill (idempotent for already-dead
        # processes), fail the in-flight task back to run(), and
        # schedule the restart through backoff + breaker.
        if worker.state not in (WORKER_ALIVE, WORKER_STARTING):
            return
        if worker.process is not None:
            worker.process.kill()
            worker.process.join(timeout=1.0)
        if worker.conn is not None:
            worker.conn.close()
            worker.conn = None
        worker.ready = False
        worker.restarts += 1
        self._restart_counter.inc(worker=str(worker.index))
        self._fail_task(worker, "worker died mid-task")
        worker.breaker.record_failure()
        if worker.breaker.state == BREAKER_OPEN:
            worker.state = WORKER_BREAKER_OPEN
        else:
            worker.state = WORKER_RESTARTING
            attempt = max(1, worker.breaker.consecutive_failures)
            worker.restart_at = now + self.backoff.delay(attempt)

    def _fail_task(self, worker: _Worker, message: str) -> None:
        # Callers hold self._cond.
        task = worker.task
        if task is None:
            return
        worker.task = None
        task.deaths += 1
        task.outcome = "death"
        task.error = message
        task.done.set()
        self._cond.notify_all()

    # ------------------------------------------------------------------
    # observability

    def stats(self) -> Dict[str, object]:
        """Supervision health snapshot (the ``repro top`` panel feed)."""
        with self._cond:
            workers = [
                {
                    "index": worker.index,
                    "state": worker.state,
                    "breaker": worker.breaker.state,
                    "restarts": worker.restarts,
                    "busy": worker.task is not None,
                }
                for worker in self._workers
            ]
            return {
                "workers": workers,
                "restarts_total": sum(w.restarts for w in self._workers),
            }
