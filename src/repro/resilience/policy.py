"""Failure policies and the reports they produce.

A :class:`FailurePolicy` tells the scheduler what to do when
``process_batch`` raises: propagate immediately (``fail_fast``, the
default everywhere), swallow the batch into a quarantine report and keep
going (``quarantine``), or re-execute it with bounded, jittered backoff
before quarantining (``retry``).  The policy also optionally carries a
:class:`WatchdogConfig` for hung-batch detection.

Everything the run learns about its own failures lands in a
:class:`RunReport` (scheduler-level, item ranges) which the proxy folds
into a :class:`CompletenessReport` (read-level, names) on
:class:`repro.core.proxy.MappingResult`.  Both are plain data: the
chaos CLI serializes them deterministically, so two runs with the same
fault-plan seed produce byte-identical reports.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.util.rng import SplitMix64

#: The three recognised policy modes.
MODES = ("fail_fast", "quarantine", "retry")


@dataclass(frozen=True)
class WatchdogConfig:
    """Soft-deadline detection of hung batches.

    The deadline for an in-flight batch is ``factor`` times the rolling
    mean duration of completed batches, floored at ``min_deadline``
    seconds (the floor is all that applies until the first batch
    completes).  ``requeue=True`` additionally abandons a flagged batch
    to the requeue queue, where surviving workers pick it up after
    draining their own work — the original worker may still finish it,
    in which case the duplicate execution is recorded in the report
    rather than hidden.
    """

    factor: float = 4.0
    min_deadline: float = 0.05
    poll_interval: float = 0.01
    requeue: bool = False

    def __post_init__(self):
        if self.factor <= 0:
            raise ValueError("watchdog factor must be positive")
        if self.min_deadline <= 0 or self.poll_interval <= 0:
            raise ValueError("watchdog deadlines must be positive")


@dataclass(frozen=True)
class FailurePolicy:
    """What the scheduler does when a batch raises.

    ``mode`` is one of ``"fail_fast"`` (re-raise to the ``run()``
    caller), ``"quarantine"`` (record the batch as failed, continue), or
    ``"retry"`` (re-execute up to ``max_attempts`` times with bounded
    exponential backoff, then quarantine).  Backoff for attempt ``n`` is
    ``min(backoff_cap, backoff_base * 2**(n-1))`` scaled down by up to
    ``backoff_jitter`` (a fraction in [0, 1]) using a :class:`SplitMix64`
    stream seeded from ``seed`` — deterministic and bounded above by
    ``backoff_cap``.
    """

    mode: str = "fail_fast"
    max_attempts: int = 3
    backoff_base: float = 0.002
    backoff_cap: float = 0.05
    backoff_jitter: float = 0.5
    seed: int = 0
    watchdog: Optional[WatchdogConfig] = None

    def __post_init__(self):
        if self.mode not in MODES:
            raise ValueError(f"unknown failure mode {self.mode!r}; choose from {MODES}")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_base < 0 or self.backoff_cap < 0:
            raise ValueError("backoff bounds must be non-negative")
        if not 0.0 <= self.backoff_jitter <= 1.0:
            raise ValueError("backoff_jitter must be in [0, 1]")

    @classmethod
    def fail_fast(cls, **kwargs) -> "FailurePolicy":
        """The default: propagate the first worker exception."""
        return cls(mode="fail_fast", **kwargs)

    @classmethod
    def quarantine(cls, **kwargs) -> "FailurePolicy":
        """Swallow failing batches into the report; never retry."""
        return cls(mode="quarantine", **kwargs)

    @classmethod
    def retry(cls, **kwargs) -> "FailurePolicy":
        """Retry failing batches with backoff, then quarantine."""
        return cls(mode="retry", **kwargs)

    def backoff_delay(self, attempt: int, rng: SplitMix64) -> float:
        """Seconds to sleep before re-attempting after failure ``attempt``.

        Always in ``[0, backoff_cap]``: the exponential term is capped
        first, then jitter only ever *shrinks* the delay (full jitter
        toward zero), so no draw can exceed the cap.
        """
        if attempt < 1:
            raise ValueError("attempt numbers start at 1")
        raw = min(self.backoff_cap, self.backoff_base * (2 ** (attempt - 1)))
        return raw * (1.0 - self.backoff_jitter * rng.random())


@dataclass(frozen=True)
class BatchFailure:
    """One batch that exhausted its policy: item range, thread, error."""

    first: int
    last: int
    thread: int
    attempts: int
    error: str

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready representation (used by the chaos report).

        Excludes ``thread``: which worker claimed the batch is
        scheduling noise, and the chaos gate requires identical reports
        across runs of the same fault-plan seed.
        """
        return {
            "first": self.first,
            "last": self.last,
            "attempts": self.attempts,
            "error": self.error,
        }


@dataclass(frozen=True)
class WatchdogEvent:
    """One soft-deadline violation observed by the watchdog."""

    thread: int
    first: int
    last: int
    elapsed: float
    deadline: float
    requeued: bool


class RunReport:
    """Thread-safe account of everything that went wrong in one run.

    Filled in by :class:`repro.resilience.harness.BatchHarness` while
    worker threads execute; read (single-threaded) after ``run()``
    returns.  ``attempts`` counts every batch execution including
    retries, so a clean run has ``attempts == batches``.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self.failures: List[BatchFailure] = []
        self.retries = 0
        self.attempts = 0
        self.duplicates: List[Tuple[int, int]] = []
        self.watchdog_events: List[WatchdogEvent] = []

    def record_attempt(self) -> None:
        """Count one batch execution (first try or retry)."""
        with self._lock:
            self.attempts += 1

    def record_retry(self) -> None:
        """Count one re-execution decision after a failed attempt."""
        with self._lock:
            self.retries += 1

    def record_quarantine(self, failure: BatchFailure) -> None:
        """Record a batch that exhausted its policy."""
        with self._lock:
            self.failures.append(failure)

    def record_duplicate(self, first: int, last: int) -> None:
        """Record a batch executed more than once (requeue overlap)."""
        with self._lock:
            self.duplicates.append((first, last))

    def record_watchdog(self, event: WatchdogEvent) -> None:
        """Record one watchdog soft-deadline violation."""
        with self._lock:
            self.watchdog_events.append(event)

    @property
    def quarantined_items(self) -> int:
        """Total items inside quarantined batches."""
        with self._lock:
            return sum(f.last - f.first for f in self.failures)

    def failed_ranges(self) -> List[Tuple[int, int]]:
        """Sorted ``(first, last)`` item ranges that were quarantined."""
        with self._lock:
            return sorted((f.first, f.last) for f in self.failures)

    def failed_indices(self) -> List[int]:
        """Every quarantined item index, sorted and deduplicated."""
        indices = set()
        for first, last in self.failed_ranges():
            indices.update(range(first, last))
        return sorted(indices)

    def to_dict(self) -> Dict[str, object]:
        """Deterministic JSON-ready summary (no wall-clock content).

        Quarantined batches are sorted by item range and watchdog events
        are reduced to a count, so two runs under the same fault-plan
        seed serialize identically regardless of thread interleaving.
        """
        with self._lock:
            failures = sorted(self.failures, key=lambda f: (f.first, f.last))
            return {
                "attempts": self.attempts,
                "retries": self.retries,
                "quarantined_batches": [f.to_dict() for f in failures],
                "quarantined_items": sum(f.last - f.first for f in failures),
                "duplicates": sorted(self.duplicates),
                "watchdog_events": len(self.watchdog_events),
            }


@dataclass
class CompletenessReport:
    """Read-level completeness of one proxy run.

    Distinguishes "no extensions found" (the read is in
    ``MappingResult.extensions`` with an empty list) from "never
    processed" (the read's name is in ``failed_reads``).  ``attempts``
    and ``retries`` mirror the scheduler's :class:`RunReport`.
    """

    total_reads: int
    failed_reads: List[str] = field(default_factory=list)
    quarantined_batches: int = 0
    retries: int = 0
    attempts: int = 0
    duplicates: int = 0
    watchdog_events: int = 0

    @property
    def processed_reads(self) -> int:
        """Reads that completed the kernels (mapped or not)."""
        return self.total_reads - len(self.failed_reads)

    @property
    def complete(self) -> bool:
        """True when every read was processed."""
        return not self.failed_reads

    @classmethod
    def from_run_report(
        cls, total_reads: int, failed_reads: List[str],
        report: Optional[RunReport],
    ) -> "CompletenessReport":
        """Fold a scheduler :class:`RunReport` into read-level terms."""
        if report is None:
            return cls(total_reads=total_reads, failed_reads=failed_reads)
        return cls(
            total_reads=total_reads,
            failed_reads=failed_reads,
            quarantined_batches=len(report.failures),
            retries=report.retries,
            attempts=report.attempts,
            duplicates=len(report.duplicates),
            watchdog_events=len(report.watchdog_events),
        )

    def to_dict(self) -> Dict[str, object]:
        """Deterministic JSON-ready summary (sorted read names)."""
        return {
            "total_reads": self.total_reads,
            "processed_reads": self.processed_reads,
            "failed_reads": sorted(self.failed_reads),
            "quarantined_batches": self.quarantined_batches,
            "retries": self.retries,
            "attempts": self.attempts,
            "duplicates": self.duplicates,
            "complete": self.complete,
        }
