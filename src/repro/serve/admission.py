"""Admission control: queue-depth backpressure and per-tenant quotas.

The service decides whether to accept a submission *before* it costs
any mapping work, in two stages:

1. **Backpressure** — the bounded request queue has a depth ceiling;
   submissions arriving while it is full are rejected with reason
   ``"queue_full"`` (the client should back off and retry).
2. **Quotas** — each tenant owns a :class:`TokenBucket` holding read
   credits: a submission of *n* reads spends *n* tokens; the bucket
   refills continuously at ``refill_rate`` tokens per second up to
   ``capacity``.  An exhausted bucket rejects with reason ``"quota"``
   and a ``retry_after`` hint derived from the refill rate.

Both decisions are pure functions of explicit inputs — depth, cost, and
a caller-supplied clock reading — so tests drive them with a fake clock
and the outcomes are deterministic (the GateSeeder-style host-side
submission queue the design follows has the same property: admission is
decided on queue state, never on wall-clock races inside the kernel
pipeline).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.util import timing

#: Admission rejection reasons (the wire-visible vocabulary).
REASON_QUEUE_FULL = "queue_full"
REASON_QUOTA = "quota"


@dataclass(frozen=True)
class TenantQuota:
    """Token-bucket parameters for one tenant.

    ``capacity`` is the burst budget (reads accepted back-to-back);
    ``refill_rate`` is the sustained throughput ceiling in reads per
    second.  A non-positive ``refill_rate`` makes the bucket
    non-replenishing (useful in tests); capacity must be positive.
    """

    capacity: float = 10_000.0
    refill_rate: float = 5_000.0

    def __post_init__(self):
        if self.capacity <= 0:
            raise ValueError("quota capacity must be positive")
        if self.refill_rate < 0:
            raise ValueError("quota refill_rate must be non-negative")


class TokenBucket:
    """A continuously refilling token bucket with an injectable clock.

    All mutation happens under one lock; ``now`` readings come from the
    supplied ``clock`` callable (default: :func:`repro.util.timing.now`)
    so tests can drive refill deterministically.
    """

    def __init__(self, quota: TenantQuota,
                 clock: Optional[Callable[[], float]] = None):
        self.quota = quota
        self._clock = clock if clock is not None else timing.now
        self._lock = threading.Lock()
        self._tokens = quota.capacity  # qa: guarded-by(self._lock)
        self._updated = self._clock()  # qa: guarded-by(self._lock)

    def _refill(self, now: float) -> None:
        elapsed = max(0.0, now - self._updated)
        self._tokens = min(  # qa: ignore[missing-lock-guard] — every caller holds self._lock
            self.quota.capacity,
            self._tokens + elapsed * self.quota.refill_rate,
        )
        self._updated = now  # qa: ignore[missing-lock-guard] — every caller holds self._lock

    def try_acquire(self, cost: float) -> bool:
        """Spend ``cost`` tokens if available; False when exhausted."""
        if cost < 0:
            raise ValueError("cost must be non-negative")
        with self._lock:
            self._refill(self._clock())
            if self._tokens >= cost:
                self._tokens -= cost
                return True
            return False

    def available(self) -> float:
        """Current token balance (after refill to now)."""
        with self._lock:
            self._refill(self._clock())
            return self._tokens

    def retry_after(self, cost: float) -> float:
        """Seconds until ``cost`` tokens will be available (0 if now).

        ``inf`` when the bucket cannot ever satisfy the cost (cost above
        capacity, or a non-replenishing bucket that is short).
        """
        with self._lock:
            self._refill(self._clock())
            deficit = cost - self._tokens
            if deficit <= 0:
                return 0.0
            if cost > self.quota.capacity or self.quota.refill_rate <= 0:
                return float("inf")
            return deficit / self.quota.refill_rate


@dataclass(frozen=True)
class AdmissionDecision:
    """The outcome of one admission check.

    ``accepted`` is the verdict; on rejection ``reason`` is one of
    :data:`REASON_QUEUE_FULL` / :data:`REASON_QUOTA` and
    ``retry_after`` is a client back-off hint in seconds (``inf`` when
    the request can never be admitted, e.g. cost above bucket capacity).
    """

    accepted: bool
    reason: Optional[str] = None
    retry_after: float = 0.0

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready representation for REJECT frames and reports."""
        payload: Dict[str, object] = {"accepted": self.accepted}
        if self.reason is not None:
            payload["reason"] = self.reason
            payload["retry_after"] = (
                self.retry_after if self.retry_after != float("inf") else None
            )
        return payload


class AdmissionController:
    """Queue-depth backpressure plus per-tenant token-bucket quotas.

    One instance guards one service.  ``admit`` is called with the
    *current* queue depth (the queue itself stays the single source of
    truth) and the request's read count; tenants get buckets lazily on
    first submission, all sharing ``quota`` unless ``tenant_quotas``
    pins a specific tenant to its own parameters.
    """

    def __init__(self, max_queue_depth: int,
                 quota: Optional[TenantQuota] = None,
                 tenant_quotas: Optional[Dict[str, TenantQuota]] = None,
                 clock: Optional[Callable[[], float]] = None):
        if max_queue_depth < 1:
            raise ValueError("max_queue_depth must be positive")
        self.max_queue_depth = max_queue_depth
        self.default_quota = quota if quota is not None else TenantQuota()
        self._tenant_quotas = dict(tenant_quotas or {})
        self._clock = clock
        self._lock = threading.Lock()
        self._buckets: Dict[str, TokenBucket] = {}  # qa: guarded-by(self._lock)

    def bucket(self, tenant: str) -> TokenBucket:
        """The tenant's bucket (created on first use)."""
        with self._lock:
            existing = self._buckets.get(tenant)
            if existing is None:
                existing = self._buckets[tenant] = TokenBucket(
                    self._tenant_quotas.get(tenant, self.default_quota),
                    clock=self._clock,
                )
            return existing

    def admit(self, tenant: str, cost: float,
              queue_depth: int) -> AdmissionDecision:
        """Decide one submission: backpressure first, then quota.

        Backpressure is checked before the bucket so a rejected-for-depth
        request never spends tenant tokens.
        """
        if queue_depth >= self.max_queue_depth:
            return AdmissionDecision(
                accepted=False, reason=REASON_QUEUE_FULL, retry_after=0.05
            )
        bucket = self.bucket(tenant)
        if bucket.try_acquire(cost):
            return AdmissionDecision(accepted=True)
        return AdmissionDecision(
            accepted=False, reason=REASON_QUOTA,
            retry_after=bucket.retry_after(cost),
        )
