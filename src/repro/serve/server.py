"""The mapping service: asyncio front-end plus supervised mapping workers.

:class:`MappingService` owns the full request lifecycle:

* the **asyncio server** accepts framed connections
  (:mod:`repro.serve.protocol`), answers HELLO with WELCOME, and routes
  SUBMIT frames through the :class:`~repro.serve.admission.AdmissionController`
  into the bounded :class:`~repro.serve.queue.RequestQueue`;
* **mapping workers** pop requests and map them — either on an
  in-process thread driving :class:`repro.core.MiniGiraffe` under a
  quarantine :class:`~repro.resilience.policy.FailurePolicy` (the
  default), or, with ``workers > 0``, on a crash-only
  :class:`~repro.resilience.supervisor.SupervisedPool` of spawn-based
  subprocesses with heartbeats, kill-and-restart backoff, and
  per-worker circuit breakers.  Either way a hung or poisoned request
  is quarantined and dead-lettered instead of wedging the service; a
  batch that kills its worker repeatedly dead-letters with a
  ``worker_death`` verdict;
* a **write-ahead journal** (:mod:`repro.serve.journal`, when
  ``journal_path`` is configured) records every admitted SUBMIT before
  it is enqueued and every terminal verdict after it settles; on
  restart, recovery repopulates the duplicate-result cache from
  completed records and readmits incomplete ids exactly once, so a
  crash loses no admitted work;
* an **exactly-once table** keyed ``(tenant, request_id)`` makes
  terminal verdicts idempotent: a duplicate of a completed request gets
  the cached RESULT back (flagged ``duplicate``); resubmitting an
  in-flight request re-points delivery at the live connection (the
  reconnect path); a dead-lettered id may be readmitted exactly once
  (the replay path);
* **deadlines** (protocol v3) propagate end-to-end: admission rejects
  an exhausted budget, dispatch re-checks it after queue wait, and
  expirations surface as a distinct SLO outcome;
* every request is traced as a ``serve.request`` span and accounted in
  the :class:`~repro.serve.slo.SLOTracker`, whose periodic report the
  server prints and any client can fetch with a STATS frame.

The server runs its event loop on a dedicated thread, so tests, the
chaos soak, and the CLI all use the same in-process entry point:
``handle = MappingService(mapper, config).start()``.  :meth:`crash`
is the crash-only exit: abort without draining, exactly as SIGKILL
would, leaving recovery to the journal.
"""

from __future__ import annotations

import asyncio
import threading
import zlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.proxy import MiniGiraffe
from repro.obs.context import TraceContext
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import NullTracer, Tracer
from repro.resilience.policy import FailurePolicy, WatchdogConfig
from repro.resilience.supervisor import (
    BackoffPolicy,
    BreakerConfig,
    HandlerSpec,
    PoolClosedError,
    SupervisedPool,
    WorkerDeathError,
    WorkerTaskError,
)
from repro.serve.admission import AdmissionController, TenantQuota
from repro.serve.journal import JournalRecovery, RequestJournal, recover_journal
from repro.serve.protocol import (
    SCHEMA,
    Frame,
    FrameError,
    FrameKind,
    decode_frames,
    encode_frame,
    pack_records,
    unpack_records,
    unpack_trace,
)
from repro.serve.queue import (
    REASON_ERROR,
    REASON_EXPIRED,
    REASON_QUARANTINED,
    REASON_WORKER_DEATH,
    DeadLetter,
    DeadLetterQueue,
    MappingRequest,
    QueueFullError,
    RequestQueue,
)
from repro.serve.slo import SLOTracker
from repro.serve.workers import extensions_digest
from repro.util import timing

#: Exactly-once table states.
_PENDING = "pending"
_DONE = "done"
_DEAD = "dead"


@dataclass(frozen=True)
class ServiceConfig:
    """Tunables for one :class:`MappingService`.

    ``request_timeout`` becomes the watchdog's minimum soft deadline:
    a request whose mapping stalls past it is quarantined and
    dead-lettered rather than blocking the worker forever.
    ``slo_interval`` > 0 prints a rendered SLO report every that many
    seconds; 0 disables the periodic report (STATS still works).
    ``keep_dead_records`` embeds the original records payload in each
    dead letter so ``repro dlq --replay`` can resubmit offline.

    ``journal_path`` enables the write-ahead request journal;
    ``recover`` (default on) replays an existing journal on start.
    ``workers`` > 0 switches mapping from the in-process thread to a
    supervised pool of that many spawn-based subprocesses built from
    ``worker_spec`` (a :class:`~repro.resilience.supervisor.HandlerSpec`);
    ``max_task_deaths`` is the poisonous-batch threshold, and
    ``worker_backoff`` / ``worker_breaker`` tune the restart schedule.
    """

    host: str = "127.0.0.1"
    port: int = 0
    max_queue_depth: int = 64
    quota: TenantQuota = field(default_factory=TenantQuota)
    tenant_quotas: Optional[Dict[str, TenantQuota]] = None
    request_timeout: float = 5.0
    watchdog_factor: float = 8.0
    slo_interval: float = 0.0
    dlq_spool: Optional[str] = None
    keep_dead_records: bool = True
    threads: int = 1
    journal_path: Optional[str] = None
    journal_fsync_batch: int = 8
    recover: bool = True
    workers: int = 0
    worker_spec: Optional[HandlerSpec] = None
    worker_heartbeat_timeout: float = 1.0
    max_task_deaths: int = 3
    worker_backoff: Optional[BackoffPolicy] = None
    worker_breaker: Optional[BreakerConfig] = None


@dataclass
class ServiceHandle:
    """A running service: the bound address plus stop/join controls."""

    host: str
    port: int
    service: "MappingService"

    def stop(self) -> None:
        """Request shutdown (idempotent)."""
        self.service.request_stop()

    def join(self, timeout: Optional[float] = None) -> None:
        """Wait for the server thread to exit."""
        self.service.join(timeout)


class MappingService:
    """One mapping service instance (see module docstring).

    The constructor wires the components; :meth:`start` binds the
    socket, launches the event-loop thread and the mapping worker, and
    returns a :class:`ServiceHandle` once the port is known.
    """

    def __init__(self, mapper: Optional[MiniGiraffe],
                 config: Optional[ServiceConfig] = None,
                 registry: Optional[MetricsRegistry] = None,
                 tracer: Optional[Tracer] = None,
                 log: Optional[Callable[[str], None]] = None,
                 worker_fault_plan=None):
        self.mapper = mapper
        self.config = config if config is not None else ServiceConfig()
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else NullTracer()
        self.log = log if log is not None else print
        self.slo = SLOTracker(self.registry)
        self.queue = RequestQueue(self.config.max_queue_depth)
        self.admission = AdmissionController(
            self.config.max_queue_depth,
            quota=self.config.quota,
            tenant_quotas=self.config.tenant_quotas,
        )
        self.dlq = DeadLetterQueue(self.config.dlq_spool)
        self._policy = FailurePolicy.quarantine(
            watchdog=WatchdogConfig(
                factor=self.config.watchdog_factor,
                min_deadline=self.config.request_timeout,
            )
        )
        self._state_lock = threading.Lock()
        #: (tenant, request_id) -> {"state", "request"|None, "payload"|None}
        self._table: Dict[Tuple[str, str], Dict[str, object]] = {}  # qa: guarded-by(self._state_lock)
        self._stop = threading.Event()
        self._crashed = threading.Event()
        self._started = threading.Event()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._bound: Tuple[str, int] = (self.config.host, self.config.port)
        self._server_thread: Optional[threading.Thread] = None
        self._worker_threads: List[threading.Thread] = []
        self._start_error: Optional[BaseException] = None
        self._worker_fault_plan = worker_fault_plan
        self.journal: Optional[RequestJournal] = None
        self.pool: Optional[SupervisedPool] = None
        self.recovery: Optional[JournalRecovery] = None
        self._finalized = False
        if self.config.workers > 0 and self.config.worker_spec is None:
            raise ValueError("workers > 0 requires a worker_spec")
        if self.config.workers == 0 and mapper is None:
            raise ValueError("thread mode requires a mapper")

    # ------------------------------------------------------------------
    # lifecycle

    def start(self) -> ServiceHandle:
        """Recover, bind, launch loop and worker threads, return a handle."""
        if self.config.journal_path and self.config.recover:
            # Recovery runs before anything serves traffic: it truncates
            # any torn tail, and its table/queue repopulation must be in
            # place before the first SUBMIT can race it.
            self.recovery = recover_journal(
                self.config.journal_path, self.registry
            )
        if self.config.journal_path:
            self.journal = RequestJournal(
                self.config.journal_path,
                fsync_batch=self.config.journal_fsync_batch,
                registry=self.registry,
            )
        if self.config.workers > 0:
            self.pool = SupervisedPool(
                self.config.worker_spec,
                workers=self.config.workers,
                heartbeat_timeout=self.config.worker_heartbeat_timeout,
                max_task_deaths=self.config.max_task_deaths,
                backoff=self.config.worker_backoff,
                breaker=self.config.worker_breaker,
                fault_plan=self._worker_fault_plan,
                registry=self.registry,
            ).start()
        if self.recovery is not None:
            self._apply_recovery(self.recovery)
        self._server_thread = threading.Thread(
            target=self._run_loop, name="repro-serve-loop", daemon=True
        )
        self._server_thread.start()
        self._started.wait()
        if self._start_error is not None:
            raise RuntimeError(
                f"service failed to start: {self._start_error}"
            ) from self._start_error
        dispatchers = self.config.workers if self.pool is not None else 1
        for index in range(max(1, dispatchers)):
            thread = threading.Thread(
                target=self._worker, name=f"repro-serve-worker-{index}",
                daemon=True,
            )
            thread.start()
            self._worker_threads.append(thread)
        host, port = self._bound
        return ServiceHandle(host=host, port=port, service=self)

    def _apply_recovery(self, recovery: JournalRecovery) -> None:
        """Fold a journal recovery into the exactly-once table.

        Completed ids repopulate the duplicate-result cache (their
        cached verdicts replay to resubmitting clients); incomplete ids
        are rebuilt from their journaled payloads and readmitted
        exactly once, bypassing admission — the previous incarnation
        already admitted and journaled them.  A journaled deadline is
        re-armed as a fresh relative budget: the monotonic clock does
        not survive the restart, so the original absolute reading is
        meaningless here.
        """
        with self._state_lock:
            for key, record in recovery.completed.items():
                state = _DONE if record.get("state") == _DONE else _DEAD
                self._table[key] = {
                    "state": state, "request": None,
                    "payload": dict(record.get("payload") or {}),
                }
        for key, submit in sorted(recovery.incomplete.items()):
            tenant, request_id = key
            records_b64 = str(submit.get("records_b64", ""))
            try:
                records = unpack_records(records_b64)
            except FrameError as error:
                # The journaled payload itself is unusable; surface the
                # loss as a dead letter rather than dropping it.
                request = MappingRequest(
                    tenant=tenant, request_id=request_id, records=[],
                    enqueued_at=timing.now(), deliver=None,
                )
                with self._state_lock:
                    self._table[key] = {"state": _PENDING, "request": request,
                                        "payload": None}
                self._dead_letter(request, REASON_ERROR,
                                  f"unrecoverable journal payload: {error}",
                                  failed=[], mapped=0, extensions=0)
                continue
            deadline = submit.get("deadline")
            context = TraceContext.from_wire(submit.get("trace"))
            if context is None:
                context = TraceContext.root()
            request = MappingRequest(
                tenant=tenant,
                request_id=request_id,
                records=records,
                enqueued_at=timing.now(),
                deliver=None,
                records_b64=(records_b64 if self.config.keep_dead_records
                             else None),
                context=context,
                expires_at=(timing.now() + float(deadline)
                            if deadline is not None else None),
            )
            with self._state_lock:
                self._table[key] = {"state": _PENDING, "request": request,
                                    "payload": None}
            self.queue.put(request, force=True)
            self.slo.record_accepted(tenant)

    def request_stop(self) -> None:
        """Ask the loop and worker to wind down (idempotent)."""
        self._stop.set()

    def crash(self) -> None:
        """Hard-abort the service: the crash-only exit path.

        Models SIGKILL as closely as an in-process shutdown can: worker
        pool children are killed without drain, queued and in-flight
        requests are abandoned unsettled, and the journal is closed
        *without* an fsync — whatever the OS already has is what
        recovery gets, exactly like a power loss.
        """
        self._crashed.set()
        self._stop.set()
        if self.pool is not None:
            self.pool.shutdown(drain=False, timeout=2.0)
        if self.journal is not None:
            self.journal.close(sync=False)
        self._finalized = True

    def join(self, timeout: Optional[float] = None) -> None:
        """Wait for the service threads to exit; finalize on clean stop."""
        if self._server_thread is not None:
            self._server_thread.join(timeout)
        for thread in self._worker_threads:
            thread.join(timeout)
        if (not self._finalized
                and not any(t.is_alive() for t in self._worker_threads)):
            self._finalized = True
            if self.pool is not None:
                self.pool.shutdown(drain=True)
            if self.journal is not None:
                self.journal.close(sync=True)

    def _run_loop(self) -> None:
        try:
            asyncio.run(self._serve())
        except BaseException as error:  # qa: ignore[broad-except] — surfaced via _start_error to start()
            self._start_error = error
            self._started.set()

    async def _serve(self) -> None:
        self._loop = asyncio.get_running_loop()
        server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        sock = server.sockets[0].getsockname()
        self._bound = (sock[0], sock[1])
        self._started.set()
        reporter = None
        if self.config.slo_interval > 0:
            reporter = asyncio.ensure_future(self._periodic_slo())
        async with server:
            while not self._stop.is_set():
                await asyncio.sleep(0.02)
        if reporter is not None:
            reporter.cancel()

    async def _periodic_slo(self) -> None:
        while True:
            await asyncio.sleep(self.config.slo_interval)
            self.log(self.slo.report().render())

    # ------------------------------------------------------------------
    # connection handling

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        buffer = b""
        tenant: Optional[str] = None

        def send(kind: int, payload: Dict[str, object]) -> None:
            if not writer.is_closing():
                writer.write(encode_frame(kind, payload))

        try:
            while not self._stop.is_set():
                try:
                    chunk = await asyncio.wait_for(reader.read(65536), 0.1)
                except asyncio.TimeoutError:
                    continue
                if not chunk:
                    break
                buffer += chunk
                try:
                    frames, buffer = decode_frames(buffer)
                except FrameError as error:
                    send(FrameKind.ERROR, {"error": str(error)})
                    break
                goodbye = False
                for frame in frames:
                    tenant, goodbye = self._dispatch(
                        frame, tenant, send, writer
                    )
                    if goodbye:
                        break
                await writer.drain()
                if goodbye:
                    break
        except ConnectionError:
            pass  # client vanished; pending results stay cached for reconnect
        finally:
            writer.close()

    def _dispatch(self, frame: Frame, tenant: Optional[str],
                  send: Callable[[int, Dict[str, object]], None],
                  writer: asyncio.StreamWriter) -> Tuple[Optional[str], bool]:
        """Handle one frame; returns ``(tenant, connection_done)``."""
        kind, payload = frame.kind, frame.payload
        if kind == FrameKind.HELLO:
            tenant = str(payload.get("tenant", "anonymous"))
            send(FrameKind.WELCOME, {
                "schema": SCHEMA,
                "tenant": tenant,
                "max_queue_depth": self.config.max_queue_depth,
            })
            return tenant, False
        if kind == FrameKind.GOODBYE:
            return tenant, True
        if kind == FrameKind.SHUTDOWN:
            send(FrameKind.GOODBYE, {"shutting_down": True})
            self.request_stop()
            return tenant, True
        if kind == FrameKind.STATS:
            report = self.slo.report().to_dict()
            report["queue_depth"] = self.queue.depth()
            report["dead_letter_queue"] = len(self.dlq)
            if self.pool is not None:
                report["workers"] = self.pool.stats()
            else:
                report["workers"] = {
                    "mode": "threads",
                    "threads": max(1, len(self._worker_threads)),
                }
            if self.journal is not None:
                journal_stats: Dict[str, object] = dict(self.journal.stats())
                if self.recovery is not None:
                    journal_stats.update(self.recovery.to_dict())
                report["journal"] = journal_stats
            send(FrameKind.SLO_REPORT, report)
            return tenant, False
        if kind == FrameKind.METRICS:
            send(FrameKind.METRICS_TEXT, {"text": self.registry.dump()})
            return tenant, False
        if kind == FrameKind.DLQ_DRAIN:
            inspect = bool(payload.get("inspect", False))
            entries = self.dlq.snapshot() if inspect else self.dlq.drain()
            send(FrameKind.DLQ_DUMP, {
                "entries": [entry.to_dict() for entry in entries],
                "drained": not inspect,
            })
            return tenant, False
        if kind == FrameKind.SUBMIT:
            if tenant is None:
                send(FrameKind.ERROR, {"error": "SUBMIT before HELLO"})
                return tenant, True
            self._handle_submit(tenant, payload, send, writer)
            return tenant, False
        send(FrameKind.ERROR, {
            "error": f"unexpected frame {FrameKind.name(kind)}"
        })
        return tenant, True

    def _handle_submit(self, tenant: str, payload: Dict[str, object],
                       send: Callable[[int, Dict[str, object]], None],
                       writer: asyncio.StreamWriter) -> None:
        request_id = str(payload.get("request_id", ""))
        if not request_id:
            send(FrameKind.ERROR, {"error": "SUBMIT without request_id"})
            return
        key = (tenant, request_id)
        loop = self._loop

        def deliver(kind: int, result_payload: Dict[str, object]) -> None:
            # Runs on the event loop; drops silently if the connection
            # died — the verdict stays cached for the reconnect path.
            if not writer.is_closing():
                writer.write(encode_frame(kind, result_payload))

        def deliver_threadsafe(kind: int,
                               result_payload: Dict[str, object]) -> None:
            loop.call_soon_threadsafe(deliver, kind, result_payload)

        with self._state_lock:
            entry = self._table.get(key)
            if entry is not None:
                state = entry["state"]
                if state == _DONE:
                    cached = dict(entry["payload"])
                    cached["duplicate"] = True
                    send(FrameKind.RESULT, cached)
                    return
                if state == _PENDING:
                    # Reconnect mid-stream: re-point delivery at the
                    # live connection; the worker's verdict follows it.
                    entry["request"].deliver = deliver_threadsafe
                    return
                # _DEAD: replay — fall through and readmit once.
                del self._table[key]

        try:
            records = unpack_records(str(payload.get("records_b64", "")))
        except FrameError as error:
            send(FrameKind.ERROR, {
                "request_id": request_id, "error": str(error),
            })
            return

        # Protocol v2 trace context; a v1 client (or a malformed value)
        # gets a server-allocated root so server-side spans still form
        # one connected tree per request.
        context = unpack_trace(payload)
        if context is None:
            context = TraceContext.root()

        # Protocol v3 deadline: relative seconds of remaining budget.
        # A malformed value is treated as absent (deadlines are an SLO
        # feature, not a validity gate); an exhausted budget is a
        # distinct rejection the client must not retry.
        deadline: Optional[float] = None
        raw_deadline = payload.get("deadline")
        if raw_deadline is not None:
            try:
                deadline = float(raw_deadline)
            except (TypeError, ValueError):
                deadline = None
        if deadline is not None and deadline <= 0:
            self.slo.record_rejected(tenant)
            self.slo.record_expired(tenant)
            send(FrameKind.REJECT, {
                "accepted": False, "reason": REASON_EXPIRED,
                "request_id": request_id, "trace_id": context.trace_id,
            })
            return

        with self.tracer.span(
            "serve.admission", context=context, tenant=tenant,
            request_id=request_id, reads=len(records),
        ) as admit_span:
            decision = self.admission.admit(tenant, len(records),
                                            self.queue.depth())
            admit_span.set(accepted=decision.accepted,
                           reason=decision.reason)
        if not decision.accepted:
            self.slo.record_rejected(tenant)
            rejection = decision.to_dict()
            rejection["request_id"] = request_id
            rejection["trace_id"] = context.trace_id
            send(FrameKind.REJECT, rejection)
            return

        request = MappingRequest(
            tenant=tenant,
            request_id=request_id,
            records=records,
            enqueued_at=timing.now(),
            deliver=deliver_threadsafe,
            records_b64=(
                str(payload.get("records_b64"))
                if self.config.keep_dead_records else None
            ),
            context=context,
            expires_at=(timing.now() + deadline
                        if deadline is not None else None),
        )
        with self._state_lock:
            self._table[key] = {"state": _PENDING, "request": request,
                                "payload": None}
        if self.journal is not None:
            # Write-ahead: the admitted submission is durable before it
            # can be worked on (and so before any verdict can exist).
            self.journal.append_submit(
                tenant, request_id, str(payload.get("records_b64", "")),
                deadline=deadline,
                trace=context.to_wire(),
            )
        try:
            self.queue.put(request)
        except QueueFullError:
            # Lost the race between the depth check and the enqueue.
            with self._state_lock:
                del self._table[key]
            if self.journal is not None:
                # Cancel the write-ahead record: the id was never
                # admitted, so recovery must not readmit it.
                self.journal.append_verdict(tenant, request_id,
                                            "rejected", {})
            self.slo.record_rejected(tenant)
            send(FrameKind.REJECT, {
                "accepted": False, "reason": "queue_full",
                "retry_after": 0.05, "request_id": request_id,
            })
            return
        self.slo.record_accepted(tenant)

    # ------------------------------------------------------------------
    # mapping worker

    def _worker(self) -> None:
        while not (self._stop.is_set() and self.queue.depth() == 0):
            if self._crashed.is_set():
                return  # crash-only exit: abandon the queue to the journal
            request = self.queue.get(timeout=0.05)
            if request is None:
                if self._stop.is_set():
                    break
                continue
            self._map_one(request)

    def _map_one(self, request: MappingRequest) -> None:
        # Queue wait ended the moment the worker picked the request up;
        # record it retroactively from the admission-time stamp so the
        # tree shows waiting and mapping as sibling intervals.
        self.tracer.record_span(
            "serve.queue_wait", request.enqueued_at, timing.now(),
            context=request.context, tenant=request.tenant,
            request_id=request.request_id,
        )
        with self.tracer.span(
            "serve.request", context=request.context, tenant=request.tenant,
            request_id=request.request_id, reads=request.read_count,
        ) as span:
            if request.expired(timing.now()):
                # The deadline budget drained while queued: a distinct
                # terminal outcome, checked before any mapping work.
                span.set_error(RuntimeError("deadline expired before dispatch"))
                self.slo.record_expired(request.tenant)
                self._dead_letter(
                    request, REASON_EXPIRED,
                    "deadline budget expired before dispatch",
                    failed=[record.name for record in request.records],
                    mapped=0, extensions=0,
                )
                return
            if self.pool is not None:
                outcome = self._map_on_pool(request, span)
            else:
                outcome = self._map_on_thread(request, span)
            if outcome is None:
                return
            latency = timing.now() - request.enqueued_at
            summary = {
                "request_id": request.request_id,
                "tenant": request.tenant,
                "read_count": request.read_count,
                "mapped_reads": outcome["mapped_reads"],
                "extensions": outcome["extensions"],
                "makespan": outcome["makespan"],
                "extensions_digest": outcome["extensions_digest"],
                "latency": latency,
            }
            if request.context is not None:
                summary["trace_id"] = request.context.trace_id
            # Account before delivering: a client that fires STATS the
            # instant its last RESULT lands must see it counted.
            self.slo.record_completed(
                request.tenant, latency, request.read_count,
                trace_id=(
                    request.context.trace_id
                    if request.context is not None else None
                ),
            )
            self._settle(request, _DONE, FrameKind.RESULT, summary)

    def _map_on_thread(self, request: MappingRequest,
                       span) -> Optional[Dict[str, object]]:
        """Map on the in-process thread; None when already settled."""
        try:
            result = self.mapper.map_reads(
                request.records, resilience=self._policy
            )
        except Exception as error:
            span.set_error(error)
            self._dead_letter(
                request, REASON_ERROR, str(error),
                failed=[record.name for record in request.records],
                mapped=0, extensions=0,
            )
            return None
        failed = (
            list(result.completeness.failed_reads)
            if result.completeness is not None else []
        )
        if failed:
            span.set_error(RuntimeError(
                f"{len(failed)} reads quarantined"
            ))
            self._dead_letter(
                request, REASON_QUARANTINED,
                f"{len(failed)} of {request.read_count} reads quarantined",
                failed=failed, mapped=result.mapped_reads,
                extensions=len(result.extensions),
            )
            return None
        return {
            "mapped_reads": result.mapped_reads,
            "extensions": len(result.extensions),
            "makespan": result.makespan,
            "extensions_digest": extensions_digest(result.extensions),
        }

    def _map_on_pool(self, request: MappingRequest,
                     span) -> Optional[Dict[str, object]]:
        """Map on the supervised pool; None when already settled.

        The fault key is a pure function of the request id, so seeded
        worker faults (SIGKILL / heartbeat stall) replay on the same
        requests across runs and across restarts.
        """
        records_b64 = request.records_b64
        if records_b64 is None:
            records_b64 = pack_records(request.records)
        fault_key = zlib.crc32(request.request_id.encode("utf-8"))
        try:
            summary = self.pool.run(
                {"records_b64": records_b64,
                 "tenant": request.tenant,
                 "request_id": request.request_id},
                fault_key=fault_key,
            )
        except WorkerDeathError as error:
            # The poisonous-batch verdict: this request killed its
            # worker max_task_deaths times in a row.
            span.set_error(error)
            self._dead_letter(
                request, REASON_WORKER_DEATH,
                f"request killed {error.deaths} worker(s)",
                failed=[record.name for record in request.records],
                mapped=0, extensions=0,
            )
            return None
        except WorkerTaskError as error:
            span.set_error(error)
            self._dead_letter(
                request, REASON_ERROR, str(error),
                failed=[record.name for record in request.records],
                mapped=0, extensions=0,
            )
            return None
        except PoolClosedError:
            # Shutdown (or crash) raced the dispatch: leave the request
            # pending — journal recovery readmits it next incarnation.
            return None
        failed = [str(name) for name in summary.get("failed_reads", [])]
        if failed:
            span.set_error(RuntimeError(
                f"{len(failed)} reads quarantined"
            ))
            self._dead_letter(
                request, REASON_QUARANTINED,
                f"{len(failed)} of {request.read_count} reads quarantined",
                failed=failed, mapped=int(summary.get("mapped_reads", 0)),
                extensions=int(summary.get("extensions", 0)),
            )
            return None
        return {
            "mapped_reads": int(summary.get("mapped_reads", 0)),
            "extensions": int(summary.get("extensions", 0)),
            "makespan": float(summary.get("makespan", 0.0)),
            "extensions_digest": str(summary.get("extensions_digest", "")),
        }

    def _dead_letter(self, request: MappingRequest, reason: str, error: str,
                     failed: List[str], mapped: int, extensions: int) -> None:
        self.dlq.push(DeadLetter(
            tenant=request.tenant,
            request_id=request.request_id,
            reason=reason,
            error=error,
            read_count=request.read_count,
            failed_reads=tuple(failed),
            records_b64=request.records_b64,
        ))
        verdict = {
            "request_id": request.request_id,
            "tenant": request.tenant,
            "reason": reason,
            "error": error,
            "read_count": request.read_count,
            "mapped_reads": mapped,
            "extensions": extensions,
            "failed_reads": sorted(failed),
        }
        if request.context is not None:
            verdict["trace_id"] = request.context.trace_id
        self.slo.record_dead_letter(request.tenant)
        self._settle(request, _DEAD, FrameKind.DEAD_LETTER, verdict)

    def _settle(self, request: MappingRequest, state: str, kind: int,
                payload: Dict[str, object]) -> None:
        """Record the terminal verdict and deliver it to the live client."""
        with self._state_lock:
            self._table[request.key] = {
                "state": state, "request": None, "payload": payload,
            }
            deliver = request.deliver
        if self.journal is not None:
            self.journal.append_verdict(
                request.tenant, request.request_id, state, payload
            )
        if deliver is not None:
            try:
                deliver(kind, payload)
            except RuntimeError:
                pass  # loop already closed during shutdown; verdict is cached
