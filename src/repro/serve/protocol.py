"""The ``repro serve`` wire format: framed JSON control messages.

One frame = a 1-byte kind tag, a 4-byte big-endian payload length, and
a UTF-8 JSON payload.  Every structural message (hello, submit, result,
reject, …) is a frame; read records travel *inside* frames as base64 of
the exact ``sequence-seeds.bin`` byte stream (framed v2 layout) the
proxy already reads, so the service consumes the same capture format as
``repro map`` and the tolerant loader's corruption handling applies
unchanged.

The framing mirrors the seed-file design philosophy: length prefixes
buy damage isolation (a decoder never reads past a declared boundary)
and a hard payload cap (:data:`MAX_PAYLOAD`) keeps one corrupt length
field from triggering a gigabyte-sized read.  Decoding is incremental
(:func:`decode_frames` consumes a growing byte buffer), so the same
code serves the asyncio server and the blocking client.
"""

from __future__ import annotations

import base64
import io
import json
import struct
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.io import ReadRecord, load_seed_file, save_seed_file
from repro.obs.context import TraceContext

#: Protocol schema tag carried in HELLO/WELCOME payloads.  v2 adds
#: causal trace context: SUBMIT may carry ``"trace"``
#: (:func:`pack_trace`) and terminal verdicts echo ``"trace_id"``; v1
#: peers simply omit both, so the protocols interoperate.  v3 adds
#: optional end-to-end deadlines: SUBMIT may carry ``"deadline"``
#: (relative seconds of remaining budget), admission rejects an
#: exhausted budget with reason ``expired``, and a request that
#: expires while queued or at dispatch dead-letters with the same
#: reason.  Every addition is optional, so v1/v2 peers interoperate
#: unchanged.
SCHEMA = "repro.serve/v3"

#: Hard per-frame payload cap (bytes).  A well-formed submission never
#: approaches this; a decoded length beyond it means the stream is
#: corrupt or hostile, and failing on the cap bounds memory.
MAX_PAYLOAD = 1 << 26

_HEADER = struct.Struct("!BI")


class FrameError(ValueError):
    """A frame failed structural validation while encoding or decoding."""


class FrameKind:
    """The frame kind tags (one byte on the wire).

    Client-to-server: HELLO, SUBMIT, STATS, METRICS, DLQ_DRAIN,
    SHUTDOWN, GOODBYE.  Server-to-client: WELCOME, RESULT, REJECT,
    DEAD_LETTER, SLO_REPORT, METRICS_TEXT, DLQ_DUMP, ERROR.
    """

    HELLO = 1
    WELCOME = 2
    SUBMIT = 3
    RESULT = 4
    REJECT = 5
    DEAD_LETTER = 6
    STATS = 7
    SLO_REPORT = 8
    METRICS = 9
    METRICS_TEXT = 10
    DLQ_DRAIN = 11
    DLQ_DUMP = 12
    SHUTDOWN = 13
    GOODBYE = 14
    ERROR = 15

    #: Every known tag, for validation.
    ALL = frozenset(range(1, 16))

    #: Tags a client may treat as the terminal answer to one SUBMIT.
    TERMINAL = frozenset({RESULT, REJECT, DEAD_LETTER})

    _NAMES = {
        1: "HELLO", 2: "WELCOME", 3: "SUBMIT", 4: "RESULT", 5: "REJECT",
        6: "DEAD_LETTER", 7: "STATS", 8: "SLO_REPORT", 9: "METRICS",
        10: "METRICS_TEXT", 11: "DLQ_DRAIN", 12: "DLQ_DUMP",
        13: "SHUTDOWN", 14: "GOODBYE", 15: "ERROR",
    }

    @classmethod
    def name(cls, kind: int) -> str:
        """Human-readable tag name (for logs and error messages)."""
        return cls._NAMES.get(kind, f"UNKNOWN({kind})")


@dataclass(frozen=True)
class Frame:
    """One decoded frame: a kind tag plus its JSON payload."""

    kind: int
    payload: Dict[str, object]

    @property
    def kind_name(self) -> str:
        """The tag's symbolic name."""
        return FrameKind.name(self.kind)


def encode_frame(kind: int, payload: Dict[str, object]) -> bytes:
    """Serialize one frame: tag byte, length prefix, JSON payload."""
    if kind not in FrameKind.ALL:
        raise FrameError(f"unknown frame kind {kind}")
    body = json.dumps(payload, sort_keys=True, separators=(",", ":")).encode(
        "utf-8"
    )
    if len(body) > MAX_PAYLOAD:
        raise FrameError(
            f"frame payload of {len(body)} bytes exceeds cap {MAX_PAYLOAD}"
        )
    return _HEADER.pack(kind, len(body)) + body


def decode_frames(buffer: bytes) -> Tuple[List[Frame], bytes]:
    """Decode every complete frame in ``buffer``.

    Returns ``(frames, remainder)`` where ``remainder`` is the trailing
    bytes of a frame still in flight — append the next read to it and
    call again.  Raises :class:`FrameError` on an unknown tag, an
    over-cap length, or an undecodable payload (framing is unambiguous,
    so any of those means the stream itself is broken).
    """
    frames: List[Frame] = []
    offset = 0
    while len(buffer) - offset >= _HEADER.size:
        kind, length = _HEADER.unpack_from(buffer, offset)
        if kind not in FrameKind.ALL:
            raise FrameError(f"unknown frame kind {kind}")
        if length > MAX_PAYLOAD:
            raise FrameError(
                f"frame payload of {length} bytes exceeds cap {MAX_PAYLOAD}"
            )
        if len(buffer) - offset - _HEADER.size < length:
            break
        body = buffer[offset + _HEADER.size:offset + _HEADER.size + length]
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise FrameError(f"undecodable frame payload: {error}") from error
        if not isinstance(payload, dict):
            raise FrameError("frame payload must be a JSON object")
        frames.append(Frame(kind, payload))
        offset += _HEADER.size + length
    return frames, buffer[offset:]


def pack_trace(context: Optional[TraceContext]) -> Dict[str, str]:
    """The ``"trace"`` value a SUBMIT frame carries (empty when None).

    Kept as a helper (rather than inlining ``to_wire``) so the wire
    shape has exactly one definition the client, server, and tests all
    share.
    """
    return context.to_wire() if context is not None else {}


def unpack_trace(payload: Dict[str, object]) -> Optional[TraceContext]:
    """Parse the ``"trace"`` key of a SUBMIT payload; None when absent.

    v1 clients never send the key and malformed values are treated as
    absent — trace context is observability, never admission-relevant,
    so a bad context must not reject a request.
    """
    return TraceContext.from_wire(payload.get("trace"))


def pack_records(records: Sequence[ReadRecord]) -> str:
    """Base64 of the framed-v2 ``sequence-seeds.bin`` byte stream."""
    stream = io.BytesIO()
    save_seed_file(records, stream, framed=True)
    return base64.b64encode(stream.getvalue()).decode("ascii")


def unpack_records(encoded: str) -> List[ReadRecord]:
    """Decode records packed by :func:`pack_records` (strict load)."""
    try:
        raw = base64.b64decode(encoded.encode("ascii"), validate=True)
    except (ValueError, UnicodeEncodeError) as error:
        raise FrameError(f"undecodable records payload: {error}") from error
    return load_seed_file(io.BytesIO(raw))
