"""The bundled streaming client behind ``repro submit`` and ``repro dlq``.

:class:`StreamingClient` is a deliberately simple blocking-socket
client: it speaks the framed protocol (:mod:`repro.serve.protocol`),
submits read batches on an open-loop schedule (inter-arrival gaps come
from :mod:`repro.workloads.traffic`, *not* from response times — a slow
server does not slow the offered load, which is what makes the
backpressure path testable), and collects every terminal verdict into a
:class:`ClientReport`.

The report enforces the client half of the exactly-once contract:
every submitted request must end in exactly one terminal verdict
(RESULT, REJECT, or DEAD_LETTER), and every submitted read must be
accounted mapped or failed — :attr:`ClientReport.complete` is the
assertion the chaos soak and the CI smoke both check.

REJECT frames are retried with the server's ``retry_after`` hint up to
``max_retries`` times before counting as final rejections, so a short
quota exhaustion heals transparently while a hard rejection still
surfaces.
"""

from __future__ import annotations

import socket
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.io import ReadRecord
from repro.obs import trace as obs_trace
from repro.obs.context import TraceContext
from repro.serve.protocol import (
    SCHEMA,
    Frame,
    FrameError,
    FrameKind,
    decode_frames,
    encode_frame,
    pack_records,
    pack_trace,
)
from repro.util import timing


@dataclass
class ClientReport:
    """Every terminal verdict one submission run collected.

    ``results`` / ``rejected`` / ``dead_lettered`` map request id to the
    terminal frame payload; ``retries`` counts REJECT frames that were
    retried (they are not terminal).  ``duplicates`` counts RESULT
    frames the server flagged as served from its exactly-once cache.
    """

    reads_submitted: int = 0
    retries: int = 0
    duplicates: int = 0
    #: Times the client performed its single bounded reconnect after
    #: the server died or stalled mid-stream.
    reconnects: int = 0
    results: Dict[str, Dict[str, object]] = field(default_factory=dict)
    rejected: Dict[str, Dict[str, object]] = field(default_factory=dict)
    dead_lettered: Dict[str, Dict[str, object]] = field(default_factory=dict)

    @property
    def reads_mapped(self) -> int:
        """Reads the server completed, including the mapped portion of
        partially dead-lettered requests (a DEAD_LETTER verdict names
        its quarantined reads; the rest were processed normally)."""
        whole = sum(int(r.get("read_count", 0)) for r in self.results.values())
        partial = sum(
            int(r.get("mapped_reads", 0))
            for r in self.dead_lettered.values()
        )
        return whole + partial

    @property
    def reads_failed(self) -> int:
        """Reads named in DEAD_LETTER verdicts (quarantined/timed out)."""
        return sum(
            len(r.get("failed_reads", ()))
            for r in self.dead_lettered.values()
        )

    @property
    def terminal_count(self) -> int:
        """Requests that reached exactly one terminal verdict."""
        return len(self.results) + len(self.rejected) + len(self.dead_lettered)

    @property
    def complete(self) -> bool:
        """The exactly-once completeness invariant for this connection.

        True when every accepted read is accounted either mapped or
        dead-lettered — no read silently lost, none double-counted.
        (Rejected requests never cost reads, so they are excluded.)
        """
        rejected_reads = sum(
            int(r.get("read_count", 0)) for r in self.rejected.values()
        )
        accounted = self.reads_mapped + self.reads_failed + rejected_reads
        return accounted == self.reads_submitted

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready summary (the ``repro submit`` report)."""
        return {
            "reads_submitted": self.reads_submitted,
            "reads_mapped": self.reads_mapped,
            "reads_failed": self.reads_failed,
            "completed": len(self.results),
            "rejected": len(self.rejected),
            "dead_lettered": len(self.dead_lettered),
            "retries": self.retries,
            "duplicates": self.duplicates,
            "reconnects": self.reconnects,
            "complete": self.complete,
        }


class StreamingClient:
    """A blocking framed-protocol client for one tenant.

    Use as a context manager or call :meth:`connect` / :meth:`close`
    explicitly.  :meth:`reconnect` drops the socket and performs a fresh
    HELLO handshake — resubmitting an in-flight request id after a
    reconnect re-points the server's delivery at the new connection.
    """

    def __init__(self, host: str, port: int, tenant: str,
                 timeout: float = 30.0, stall_timeout: float = 10.0):
        self.host = host
        self.port = port
        self.tenant = tenant
        self.timeout = timeout
        #: Seconds of silence with verdicts outstanding before
        #: :meth:`stream` declares the server dead and performs its
        #: single bounded reconnect-and-resubmit.
        self.stall_timeout = stall_timeout
        self._sock: Optional[socket.socket] = None
        self._buffer = b""
        self.welcome: Optional[Dict[str, object]] = None
        # request id -> (root trace context, submit timestamp).  The
        # entry is created on first submit and *reused* on every retry
        # and resubmission of the same id (including across reconnect),
        # so one request is one trace no matter how many attempts it
        # took; it is consumed when the terminal verdict is recorded.
        self._traces: Dict[str, Tuple[TraceContext, float]] = {}

    def __enter__(self) -> "StreamingClient":
        self.connect()
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def connect(self) -> Dict[str, object]:
        """Open the socket and perform the HELLO/WELCOME handshake."""
        self._sock = socket.create_connection(
            (self.host, self.port), timeout=self.timeout
        )
        self._buffer = b""
        self._send(FrameKind.HELLO, {"tenant": self.tenant, "schema": SCHEMA})
        frame = self._recv()
        if frame.kind != FrameKind.WELCOME:
            raise FrameError(
                f"expected WELCOME, got {frame.kind_name}: {frame.payload}"
            )
        self.welcome = frame.payload
        return frame.payload

    def reconnect(self) -> Dict[str, object]:
        """Drop the connection and handshake again (same tenant)."""
        self.close()
        return self.connect()

    def close(self) -> None:
        """Close the socket (idempotent)."""
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    # ------------------------------------------------------------------
    # framing

    def _send(self, kind: int, payload: Dict[str, object]) -> None:
        if self._sock is None:
            raise ConnectionError("client is not connected")
        self._sock.sendall(encode_frame(kind, payload))

    def _recv(self, timeout: Optional[float] = None) -> Frame:
        """Block until one complete frame arrives."""
        frame = self._try_recv(timeout if timeout is not None else self.timeout)
        if frame is None:
            raise TimeoutError("timed out waiting for a frame")
        return frame

    def _try_recv(self, timeout: float) -> Optional[Frame]:
        """One frame, or None if ``timeout`` elapses first."""
        if self._sock is None:
            raise ConnectionError("client is not connected")
        deadline = time.monotonic() + timeout
        while True:
            frames, self._buffer = decode_frames(self._buffer)
            if frames:
                # Push any extra frames back is unnecessary: decode is
                # incremental, so take the first and re-encode the rest
                # ahead of the buffer.
                first, rest = frames[0], frames[1:]
                if rest:
                    self._buffer = b"".join(
                        encode_frame(f.kind, f.payload) for f in rest
                    ) + self._buffer
                return first
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return None
            self._sock.settimeout(min(0.1, remaining))
            try:
                chunk = self._sock.recv(65536)
            except socket.timeout:
                continue
            if not chunk:
                raise ConnectionError("server closed the connection")
            self._buffer += chunk

    # ------------------------------------------------------------------
    # verbs

    def _trace_root(self, request_id: str) -> TraceContext:
        """The request's root trace context (created on first submit)."""
        entry = self._traces.get(request_id)
        if entry is None:
            entry = (TraceContext.root(), timing.now())
            self._traces[request_id] = entry
        return entry[0]

    def submit(self, request_id: str, records: Sequence[ReadRecord],
               deadline: Optional[float] = None) -> None:
        """Fire one SUBMIT frame (the verdict arrives asynchronously).

        ``deadline`` is the protocol v3 remaining-budget hint in
        seconds; the server rejects an exhausted budget with reason
        ``expired`` (which the client never retries).
        """
        payload: Dict[str, object] = {
            "request_id": request_id,
            "records_b64": pack_records(records),
            "trace": pack_trace(self._trace_root(request_id)),
        }
        if deadline is not None:
            payload["deadline"] = deadline
        self._send(FrameKind.SUBMIT, payload)

    def submit_raw(self, request_id: str, records_b64: str) -> None:
        """SUBMIT with an already-packed payload (dead-letter replay)."""
        self._send(FrameKind.SUBMIT, {
            "request_id": request_id,
            "records_b64": records_b64,
            "trace": pack_trace(self._trace_root(request_id)),
        })

    def stats(self) -> Dict[str, object]:
        """Fetch the server's current SLO report."""
        self._send(FrameKind.STATS, {})
        return self._expect(FrameKind.SLO_REPORT).payload

    def metrics_text(self) -> str:
        """Fetch the Prometheus text dump of the server's registry."""
        self._send(FrameKind.METRICS, {})
        return str(self._expect(FrameKind.METRICS_TEXT).payload["text"])

    def dlq_dump(self, inspect: bool = False) -> List[Dict[str, object]]:
        """Drain (or with ``inspect=True`` just view) the dead-letter queue."""
        self._send(FrameKind.DLQ_DRAIN, {"inspect": inspect})
        return list(self._expect(FrameKind.DLQ_DUMP).payload["entries"])

    def shutdown(self) -> None:
        """Ask the server to stop; waits for its GOODBYE."""
        self._send(FrameKind.SHUTDOWN, {})
        self._expect(FrameKind.GOODBYE)

    def _expect(self, kind: int) -> Frame:
        """Next frame of ``kind``; terminal frames for other requests
        may interleave, so buffer-skip is not allowed — callers use this
        only on connections with no submissions in flight."""
        frame = self._recv()
        if frame.kind == FrameKind.ERROR:
            raise FrameError(f"server error: {frame.payload}")
        if frame.kind != kind:
            raise FrameError(
                f"expected {FrameKind.name(kind)}, got {frame.kind_name}"
            )
        return frame

    # ------------------------------------------------------------------
    # streaming

    def stream(self, batches: Sequence[Sequence[ReadRecord]],
               gaps: Optional[Sequence[float]] = None,
               request_prefix: str = "req",
               max_retries: int = 8,
               deadline: Optional[float] = None) -> ClientReport:
        """Submit ``batches`` open-loop and collect every verdict.

        ``gaps[i]`` seconds elapse before batch ``i`` is sent (open-loop:
        the schedule never waits for responses).  REJECT verdicts are
        retried after the server's ``retry_after`` hint, up to
        ``max_retries`` per request; further rejections are final
        (and ``expired`` rejections are always final — retrying a spent
        deadline budget cannot succeed).  ``deadline`` is attached to
        every SUBMIT as the per-request budget.

        A server that dies or stalls mid-stream no longer wedges the
        client: after a broken connection or ``stall_timeout`` seconds
        of silence with verdicts outstanding, the client performs a
        *single* bounded reconnect-and-resubmit (the server's
        exactly-once table re-points delivery, so completed work comes
        back as duplicate RESULTs).  A second failure raises
        ``ConnectionError``.  Returns once every request has a terminal
        verdict.
        """
        report = ClientReport()
        pending: Dict[str, Sequence[ReadRecord]] = {}
        attempts: Dict[str, int] = {}
        retry_at: List[Tuple[float, str]] = []
        to_send = [
            (f"{request_prefix}-{index:04d}", list(batch))
            for index, batch in enumerate(batches)
        ]
        for _, batch in to_send:
            report.reads_submitted += len(batch)
        send_at = time.monotonic()
        cursor = 0
        last_frame = time.monotonic()
        reconnected = False
        while cursor < len(to_send) or pending or retry_at:
            try:
                now = time.monotonic()
                if cursor < len(to_send):
                    gap = gaps[cursor] if gaps is not None else 0.0
                    if now >= send_at + gap:
                        request_id, batch = to_send[cursor]
                        self.submit(request_id, batch, deadline=deadline)
                        pending[request_id] = batch
                        attempts[request_id] = 1
                        send_at = now
                        cursor += 1
                ready = [item for item in retry_at if item[0] <= now]
                if ready:
                    retry_at = [item for item in retry_at if item[0] > now]
                    for _, request_id in ready:
                        self.submit(request_id, pending[request_id],
                                    deadline=deadline)
                frame = self._try_recv(0.02)
            except (ConnectionError, OSError) as error:
                reconnected = self._recover_stream(
                    pending, report, reconnected, deadline, error
                )
                last_frame = time.monotonic()
                continue
            if frame is not None:
                last_frame = time.monotonic()
                self._absorb(frame, report, pending, attempts, retry_at,
                             max_retries)
            elif (pending
                  and time.monotonic() - last_frame > self.stall_timeout):
                reconnected = self._recover_stream(
                    pending, report, reconnected, deadline,
                    TimeoutError(
                        f"no frame for {self.stall_timeout}s with "
                        f"{len(pending)} verdict(s) outstanding"
                    ),
                )
                last_frame = time.monotonic()
        return report

    def _recover_stream(self, pending: Dict[str, Sequence[ReadRecord]],
                        report: ClientReport, reconnected: bool,
                        deadline: Optional[float],
                        cause: BaseException) -> bool:
        """The single bounded reconnect-and-resubmit; returns True.

        Retries the TCP connect for up to ``timeout`` seconds (the
        server may be restarting), then resubmits every pending request
        id — the server's exactly-once table re-points delivery at the
        new connection, serving already-completed ids from its cache.
        Raises ``ConnectionError`` when a recovery was already spent:
        one reconnect is the contract, not a retry loop.
        """
        if reconnected:
            raise ConnectionError(
                f"server unresponsive after reconnect: {cause}"
            ) from cause
        give_up_at = time.monotonic() + self.timeout
        while True:
            try:
                self.reconnect()
                break
            except OSError as error:
                if time.monotonic() >= give_up_at:
                    raise ConnectionError(
                        f"reconnect failed after {self.timeout}s: {error}"
                    ) from error
                time.sleep(0.05)
        report.reconnects += 1
        for request_id, batch in pending.items():
            self.submit(request_id, batch, deadline=deadline)
        return True

    def drain_pending(self, pending_ids: Sequence[str],
                      report: Optional[ClientReport] = None,
                      resubmit: Optional[Dict[str, Sequence[ReadRecord]]] = None,
                      max_retries: int = 8) -> ClientReport:
        """Collect verdicts for requests submitted earlier (reconnect path).

        ``resubmit`` maps request id to its records — after a reconnect
        the server must see the id again to re-point delivery, so each
        id in ``pending_ids`` present in ``resubmit`` is resubmitted
        first (a completed one comes straight back as a duplicate
        RESULT).
        """
        report = report if report is not None else ClientReport()
        pending: Dict[str, Sequence[ReadRecord]] = {}
        attempts: Dict[str, int] = {}
        retry_at: List[Tuple[float, str]] = []
        for request_id in pending_ids:
            records = (resubmit or {}).get(request_id, [])
            pending[request_id] = records
            attempts[request_id] = 1
            report.reads_submitted += len(records)
            if resubmit and request_id in resubmit:
                self.submit(request_id, records)
        while pending or retry_at:
            now = time.monotonic()
            ready = [item for item in retry_at if item[0] <= now]
            if ready:
                retry_at = [item for item in retry_at if item[0] > now]
                for _, request_id in ready:
                    self.submit(request_id, pending[request_id])
            frame = self._try_recv(0.02)
            if frame is not None:
                self._absorb(frame, report, pending, attempts, retry_at,
                             max_retries)
        return report

    def _close_trace(self, request_id: str, status: str,
                     payload: Dict[str, object]) -> None:
        """Record the whole-request client span at the terminal verdict.

        Recorded retroactively under the root context :meth:`submit`
        allocated (and shipped on the wire), so every server-side span
        for this request is already a descendant.  The server's echoed
        ``trace_id`` is attached as an attribute: on a duplicate RESULT
        it names the *original* request's trace (the cached verdict),
        which is how a duplicate's client span links to the cached
        request's tree.
        """
        entry = self._traces.pop(request_id, None)
        if entry is None:
            return
        ids, started = entry
        attrs: Dict[str, object] = {"verdict": status}
        server_trace = payload.get("trace_id")
        if server_trace is not None:
            attrs["server_trace_id"] = server_trace
        if payload.get("duplicate"):
            attrs["duplicate"] = True
        obs_trace.get_tracer().record_span(
            "client.request", started, timing.now(), ids=ids,
            status="error" if status == "dead_letter" else "ok",
            tenant=self.tenant, request_id=request_id, **attrs,
        )

    def _absorb(self, frame: Frame, report: ClientReport,
                pending: Dict[str, Sequence[ReadRecord]],
                attempts: Dict[str, int],
                retry_at: List[Tuple[float, str]],
                max_retries: int) -> None:
        """Fold one server frame into the report and retry state."""
        payload = frame.payload
        request_id = str(payload.get("request_id", ""))
        if frame.kind == FrameKind.RESULT:
            if payload.get("duplicate"):
                report.duplicates += 1
            report.results[request_id] = payload
            pending.pop(request_id, None)
            self._close_trace(request_id, "result", payload)
            return
        if frame.kind == FrameKind.DEAD_LETTER:
            report.dead_lettered[request_id] = payload
            pending.pop(request_id, None)
            self._close_trace(request_id, "dead_letter", payload)
            return
        if frame.kind == FrameKind.REJECT:
            expired = payload.get("reason") == "expired"
            if not expired and attempts.get(request_id, 1) < max_retries + 1:
                attempts[request_id] = attempts.get(request_id, 1) + 1
                report.retries += 1
                hint = payload.get("retry_after")
                delay = float(hint) if hint is not None else 0.05
                retry_at.append((time.monotonic() + delay, request_id))
                return
            final = dict(payload)
            # The server's REJECT carries no read count (it never
            # decoded the batch); fill it in from the client side so
            # the completeness invariant can exclude rejected reads.
            final["read_count"] = len(pending.get(request_id, ()))
            report.rejected[request_id] = final
            pending.pop(request_id, None)
            self._close_trace(request_id, "rejected", payload)
            return
        if frame.kind == FrameKind.ERROR:
            raise FrameError(f"server error: {payload}")
        # SLO_REPORT / METRICS_TEXT and friends never interleave with a
        # stream from this client; anything else is a protocol breach.
        raise FrameError(f"unexpected frame {frame.kind_name} mid-stream")
