"""Service-level objective tracking: per-tenant latency and error rates.

Every terminal verdict the service issues — RESULT, REJECT, or
DEAD_LETTER — is recorded here.  Latencies (submission arrival to
result delivery, seconds) go into a per-tenant
:class:`repro.obs.metrics.Histogram`, so the same registry that feeds
``MetricsRegistry.dump()`` Prometheus text also answers quantile
queries.  Counters track accepted / rejected / dead-lettered requests
and reads per tenant.

:meth:`SLOTracker.report` snapshots all of it into an
:class:`SLOReport`: p50/p90/p99 mapping latency per tenant and overall,
rejection rate, and dead-letter rate.  Empty windows are reported
honestly — a tenant with no completed requests gets ``{}`` percentiles
and ``None`` rates rather than fabricated zeros, mirroring how
:meth:`Histogram.percentiles` treats an empty series.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.obs.metrics import Histogram, MetricsRegistry, percentile_summary

#: Percentiles every SLO report carries.
REPORT_PERCENTILES: Tuple[int, ...] = (50, 90, 99)

#: Worst-latency exemplars retained per tenant (trace ids included), so
#: an SLO miss can name the requests to go look at.
MAX_EXEMPLARS = 5


@dataclass(frozen=True)
class SLOReport:
    """One snapshot of the service's SLO posture.

    ``latency_percentiles`` maps tenant name to ``{"p50": ..., "p90":
    ..., "p99": ...}`` (empty dict when the tenant has completed no
    requests); the ``"*"`` key aggregates across tenants.  Rates are
    fractions of *decided* requests (``None`` when nothing has been
    decided yet).
    """

    window_requests: int
    accepted: int
    rejected: int
    dead_lettered: int
    completed: int
    reads_mapped: int
    latency_percentiles: Dict[str, Dict[str, float]]
    rejection_rate: Optional[float]
    dead_letter_rate: Optional[float]
    #: Requests whose deadline budget expired (admission or dispatch) —
    #: a distinct SLO outcome from quarantine/error dead letters.
    #: Defaults keep older report payloads reconstructable.
    expired: int = 0
    expired_rate: Optional[float] = None
    #: Per-tenant worst-latency exemplars: tenant -> list of
    #: ``{"latency": seconds, "trace_id": id-or-None}``, worst first.
    #: The trace ids name the requests behind the tail percentiles —
    #: feed them to ``repro trace --attribute``.
    exemplars: Dict[str, List[Dict[str, object]]] = field(default_factory=dict)
    #: Per-tenant outcome counters (completed / rejected / dead_lettered
    #: / reads_mapped), the feed for the ``repro top`` live view.
    per_tenant: Dict[str, Dict[str, int]] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready representation (SLO_REPORT frames, --slo-report)."""
        return {
            "window_requests": self.window_requests,
            "accepted": self.accepted,
            "rejected": self.rejected,
            "dead_lettered": self.dead_lettered,
            "completed": self.completed,
            "reads_mapped": self.reads_mapped,
            "latency_percentiles": self.latency_percentiles,
            "rejection_rate": self.rejection_rate,
            "dead_letter_rate": self.dead_letter_rate,
            "expired": self.expired,
            "expired_rate": self.expired_rate,
            "exemplars": self.exemplars,
            "per_tenant": self.per_tenant,
        }

    def render(self) -> str:
        """Multi-line human rendering for the periodic server log."""
        lines = [
            "SLO report: "
            f"{self.window_requests} requests "
            f"({self.accepted} accepted, {self.rejected} rejected, "
            f"{self.dead_lettered} dead-lettered, "
            f"{self.completed} completed), "
            f"{self.reads_mapped} reads mapped",
        ]
        if self.rejection_rate is not None:
            lines.append(
                f"  rejection_rate={self.rejection_rate:.4f} "
                f"dead_letter_rate={self.dead_letter_rate:.4f}"
            )
        if self.expired:
            lines.append(f"  deadline_expired={self.expired}")
        for tenant in sorted(self.latency_percentiles):
            pcts = self.latency_percentiles[tenant]
            if not pcts:
                lines.append(f"  tenant={tenant}: no completed requests")
                continue
            rendered = " ".join(
                f"{name}={pcts[name] * 1000.0:.2f}ms"
                for name in sorted(pcts)
            )
            lines.append(f"  tenant={tenant}: {rendered}")
            worst = self.exemplars.get(tenant) or []
            if worst and worst[0].get("trace_id"):
                lines.append(
                    f"    worst: {worst[0]['latency'] * 1000.0:.2f}ms "
                    f"trace={worst[0]['trace_id']}"
                )
        return "\n".join(lines)


class SLOTracker:
    """Accumulates per-tenant request outcomes into SLO reports.

    One instance guards one service.  All counters live under a single
    lock; latency samples additionally feed a ``serve_request_latency``
    histogram (labelled by tenant) in the supplied
    :class:`MetricsRegistry`, so ``repro submit --metrics`` surfaces
    the same series in Prometheus text form.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None):
        self.registry = registry if registry is not None else MetricsRegistry()
        self._hist: Histogram = self.registry.histogram(
            "serve_request_latency",
            "Mapping request latency, submission to delivery (seconds).",
        )
        self._lock = threading.Lock()
        self._accepted = 0  # qa: guarded-by(self._lock)
        self._rejected = 0  # qa: guarded-by(self._lock)
        self._dead_lettered = 0  # qa: guarded-by(self._lock)
        self._completed = 0  # qa: guarded-by(self._lock)
        self._expired = 0  # qa: guarded-by(self._lock)
        self._reads_mapped = 0  # qa: guarded-by(self._lock)
        self._latencies: Dict[str, List[float]] = {}  # qa: guarded-by(self._lock)
        self._exemplars: Dict[str, List[Dict[str, object]]] = {}  # qa: guarded-by(self._lock)
        self._tenant_counts: Dict[str, Dict[str, int]] = {}  # qa: guarded-by(self._lock)

    def _counts(self, tenant: str) -> Dict[str, int]:
        # Callers hold self._lock.
        counts = self._tenant_counts.get(tenant)
        if counts is None:
            counts = self._tenant_counts[tenant] = {  # qa: ignore[missing-lock-guard] — every caller holds self._lock
                "completed": 0, "rejected": 0, "dead_lettered": 0,
                "reads_mapped": 0, "expired": 0,
            }
        return counts

    def record_accepted(self, tenant: str) -> None:
        """Count one admitted submission."""
        with self._lock:
            self._accepted += 1
            self._latencies.setdefault(tenant, [])

    def record_rejected(self, tenant: str) -> None:
        """Count one admission rejection (backpressure or quota)."""
        with self._lock:
            self._rejected += 1
            self._latencies.setdefault(tenant, [])
            self._counts(tenant)["rejected"] += 1
        self.registry.counter(
            "serve_rejected_total", "Requests rejected at admission."
        ).inc(tenant=tenant)

    def record_completed(self, tenant: str, latency: float, reads: int,
                         trace_id: Optional[str] = None) -> None:
        """Count one successful mapping and its end-to-end latency.

        ``trace_id`` (protocol v2) is retained as a worst-latency
        exemplar so tail percentiles come with the trace ids behind
        them.
        """
        with self._lock:
            self._completed += 1
            self._reads_mapped += reads
            self._latencies.setdefault(tenant, []).append(latency)
            counts = self._counts(tenant)
            counts["completed"] += 1
            counts["reads_mapped"] += reads
            worst = self._exemplars.setdefault(tenant, [])
            worst.append({"latency": latency, "trace_id": trace_id})
            worst.sort(key=lambda entry: -float(entry["latency"]))
            del worst[MAX_EXEMPLARS:]
        self._hist.observe(latency, tenant=tenant)

    def record_expired(self, tenant: str) -> None:
        """Count one deadline expiration (overlay on the terminal outcome).

        Expiration is a *distinct SLO outcome* layered on top of the
        terminal verdict the client saw: an admission-time expiration is
        also recorded rejected, a dispatch-time one also dead-lettered —
        this counter is what separates "the budget ran out" from "the
        work failed".
        """
        with self._lock:
            self._expired += 1
            self._latencies.setdefault(tenant, [])
            self._counts(tenant)["expired"] += 1
        self.registry.counter(
            "serve_deadline_expired_total",
            "Requests whose deadline budget expired.",
        ).inc(tenant=tenant)

    def record_dead_letter(self, tenant: str) -> None:
        """Count one request that terminated in the dead-letter queue."""
        with self._lock:
            self._dead_lettered += 1
            self._latencies.setdefault(tenant, [])
            self._counts(tenant)["dead_lettered"] += 1
        self.registry.counter(
            "serve_dead_letter_total", "Requests routed to the DLQ."
        ).inc(tenant=tenant)

    @staticmethod
    def _percentiles(samples: List[float]) -> Dict[str, float]:
        """p50/p90/p99 of ``samples``; ``{}`` for an empty window.

        Delegates to the one shared nearest-rank implementation
        (:func:`repro.obs.metrics.percentile_summary`) so SLO reports
        and histogram estimates can never drift apart.
        """
        return percentile_summary(samples, REPORT_PERCENTILES)

    def report(self) -> SLOReport:
        """Snapshot the current window into an :class:`SLOReport`."""
        with self._lock:
            decided = self._rejected + self._dead_lettered + self._completed
            per_tenant = {
                tenant: self._percentiles(samples)
                for tenant, samples in self._latencies.items()
            }
            combined: List[float] = []
            for samples in self._latencies.values():
                combined.extend(samples)
            per_tenant["*"] = self._percentiles(combined)
            exemplars = {
                tenant: [dict(entry) for entry in worst]
                for tenant, worst in self._exemplars.items()
            }
            tenant_counts = {
                tenant: dict(counts)
                for tenant, counts in self._tenant_counts.items()
            }
            return SLOReport(
                window_requests=self._accepted + self._rejected,
                accepted=self._accepted,
                rejected=self._rejected,
                dead_lettered=self._dead_lettered,
                completed=self._completed,
                reads_mapped=self._reads_mapped,
                latency_percentiles=per_tenant,
                rejection_rate=(
                    self._rejected / decided if decided else None
                ),
                dead_letter_rate=(
                    self._dead_lettered / decided if decided else None
                ),
                expired=self._expired,
                expired_rate=(
                    self._expired / decided if decided else None
                ),
                exemplars=exemplars,
                per_tenant=tenant_counts,
            )

    def report_json(self) -> str:
        """The current report as a compact JSON string."""
        return json.dumps(self.report().to_dict(), sort_keys=True)
