"""Service-level objective tracking: per-tenant latency and error rates.

Every terminal verdict the service issues — RESULT, REJECT, or
DEAD_LETTER — is recorded here.  Latencies (submission arrival to
result delivery, seconds) go into a per-tenant
:class:`repro.obs.metrics.Histogram`, so the same registry that feeds
``MetricsRegistry.dump()`` Prometheus text also answers quantile
queries.  Counters track accepted / rejected / dead-lettered requests
and reads per tenant.

:meth:`SLOTracker.report` snapshots all of it into an
:class:`SLOReport`: p50/p90/p99 mapping latency per tenant and overall,
rejection rate, and dead-letter rate.  Empty windows are reported
honestly — a tenant with no completed requests gets ``{}`` percentiles
and ``None`` rates rather than fabricated zeros, mirroring how
:meth:`Histogram.percentiles` treats an empty series.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.obs.metrics import Histogram, MetricsRegistry

#: Percentiles every SLO report carries.
REPORT_PERCENTILES: Tuple[int, ...] = (50, 90, 99)


@dataclass(frozen=True)
class SLOReport:
    """One snapshot of the service's SLO posture.

    ``latency_percentiles`` maps tenant name to ``{"p50": ..., "p90":
    ..., "p99": ...}`` (empty dict when the tenant has completed no
    requests); the ``"*"`` key aggregates across tenants.  Rates are
    fractions of *decided* requests (``None`` when nothing has been
    decided yet).
    """

    window_requests: int
    accepted: int
    rejected: int
    dead_lettered: int
    completed: int
    reads_mapped: int
    latency_percentiles: Dict[str, Dict[str, float]]
    rejection_rate: Optional[float]
    dead_letter_rate: Optional[float]

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready representation (SLO_REPORT frames, --slo-report)."""
        return {
            "window_requests": self.window_requests,
            "accepted": self.accepted,
            "rejected": self.rejected,
            "dead_lettered": self.dead_lettered,
            "completed": self.completed,
            "reads_mapped": self.reads_mapped,
            "latency_percentiles": self.latency_percentiles,
            "rejection_rate": self.rejection_rate,
            "dead_letter_rate": self.dead_letter_rate,
        }

    def render(self) -> str:
        """Multi-line human rendering for the periodic server log."""
        lines = [
            "SLO report: "
            f"{self.window_requests} requests "
            f"({self.accepted} accepted, {self.rejected} rejected, "
            f"{self.dead_lettered} dead-lettered, "
            f"{self.completed} completed), "
            f"{self.reads_mapped} reads mapped",
        ]
        if self.rejection_rate is not None:
            lines.append(
                f"  rejection_rate={self.rejection_rate:.4f} "
                f"dead_letter_rate={self.dead_letter_rate:.4f}"
            )
        for tenant in sorted(self.latency_percentiles):
            pcts = self.latency_percentiles[tenant]
            if not pcts:
                lines.append(f"  tenant={tenant}: no completed requests")
                continue
            rendered = " ".join(
                f"{name}={pcts[name] * 1000.0:.2f}ms"
                for name in sorted(pcts)
            )
            lines.append(f"  tenant={tenant}: {rendered}")
        return "\n".join(lines)


class SLOTracker:
    """Accumulates per-tenant request outcomes into SLO reports.

    One instance guards one service.  All counters live under a single
    lock; latency samples additionally feed a ``serve_request_latency``
    histogram (labelled by tenant) in the supplied
    :class:`MetricsRegistry`, so ``repro submit --metrics`` surfaces
    the same series in Prometheus text form.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None):
        self.registry = registry if registry is not None else MetricsRegistry()
        self._hist: Histogram = self.registry.histogram(
            "serve_request_latency",
            "Mapping request latency, submission to delivery (seconds).",
        )
        self._lock = threading.Lock()
        self._accepted = 0  # qa: guarded-by(self._lock)
        self._rejected = 0  # qa: guarded-by(self._lock)
        self._dead_lettered = 0  # qa: guarded-by(self._lock)
        self._completed = 0  # qa: guarded-by(self._lock)
        self._reads_mapped = 0  # qa: guarded-by(self._lock)
        self._latencies: Dict[str, List[float]] = {}  # qa: guarded-by(self._lock)

    def record_accepted(self, tenant: str) -> None:
        """Count one admitted submission."""
        with self._lock:
            self._accepted += 1
            self._latencies.setdefault(tenant, [])

    def record_rejected(self, tenant: str) -> None:
        """Count one admission rejection (backpressure or quota)."""
        with self._lock:
            self._rejected += 1
            self._latencies.setdefault(tenant, [])
        self.registry.counter(
            "serve_rejected_total", "Requests rejected at admission."
        ).inc(tenant=tenant)

    def record_completed(self, tenant: str, latency: float,
                         reads: int) -> None:
        """Count one successful mapping and its end-to-end latency."""
        with self._lock:
            self._completed += 1
            self._reads_mapped += reads
            self._latencies.setdefault(tenant, []).append(latency)
        self._hist.observe(latency, tenant=tenant)

    def record_dead_letter(self, tenant: str) -> None:
        """Count one request that terminated in the dead-letter queue."""
        with self._lock:
            self._dead_lettered += 1
            self._latencies.setdefault(tenant, [])
        self.registry.counter(
            "serve_dead_letter_total", "Requests routed to the DLQ."
        ).inc(tenant=tenant)

    @staticmethod
    def _percentiles(samples: List[float]) -> Dict[str, float]:
        """p50/p90/p99 of ``samples``; ``{}`` for an empty window."""
        if not samples:
            return {}
        ordered = sorted(samples)
        out: Dict[str, float] = {}
        for p in REPORT_PERCENTILES:
            # Nearest-rank on the sorted window, matching
            # Histogram.quantile so the two surfaces agree.
            rank = max(0, min(len(ordered) - 1,
                              round(p / 100.0 * (len(ordered) - 1))))
            out[f"p{p}"] = ordered[rank]
        return out

    def report(self) -> SLOReport:
        """Snapshot the current window into an :class:`SLOReport`."""
        with self._lock:
            decided = self._rejected + self._dead_lettered + self._completed
            per_tenant = {
                tenant: self._percentiles(samples)
                for tenant, samples in self._latencies.items()
            }
            combined: List[float] = []
            for samples in self._latencies.values():
                combined.extend(samples)
            per_tenant["*"] = self._percentiles(combined)
            return SLOReport(
                window_requests=self._accepted + self._rejected,
                accepted=self._accepted,
                rejected=self._rejected,
                dead_lettered=self._dead_lettered,
                completed=self._completed,
                reads_mapped=self._reads_mapped,
                latency_percentiles=per_tenant,
                rejection_rate=(
                    self._rejected / decided if decided else None
                ),
                dead_letter_rate=(
                    self._dead_lettered / decided if decided else None
                ),
            )

    def report_json(self) -> str:
        """The current report as a compact JSON string."""
        return json.dumps(self.report().to_dict(), sort_keys=True)
