"""Mapping-as-a-service: the long-running ``repro serve`` front-end.

The paper frames miniGiraffe as a proxy for the mapping workload that
production Giraffe deployments actually run — sustained streams of read
batches, not one-shot files.  This package turns the batch proxy into
that service:

* :mod:`repro.serve.protocol` — the framed wire format: length-prefixed
  JSON control frames carrying base64-packed ``sequence-seeds.bin``
  payloads (the exact capture format the proxy already reads);
* :mod:`repro.serve.admission` — admission control: a bounded queue
  depth plus per-tenant token-bucket quotas, decided *before* a request
  costs any mapping work;
* :mod:`repro.serve.queue` — the bounded request queue feeding the
  mapping worker, and the dead-letter queue that quarantined or
  timed-out requests land in (drainable, inspectable, replayable);
* :mod:`repro.serve.slo` — per-tenant latency histograms and
  rejection/dead-letter accounting on :mod:`repro.obs` metrics,
  summarized as p50/p99 SLO reports;
* :mod:`repro.serve.server` — the asyncio socket front-end and the
  mapping worker thread that drives :class:`repro.core.MiniGiraffe`
  under a quarantine :class:`repro.resilience.FailurePolicy`, so the
  resilience layer is the service's failure domain;
* :mod:`repro.serve.client` — the bundled streaming client behind
  ``repro submit`` and ``repro dlq``;
* :mod:`repro.serve.journal` — the write-ahead request journal: every
  admitted SUBMIT is durable before it is enqueued, every terminal
  verdict is recorded, and restart recovery rebuilds the exactly-once
  table from the fold (truncating torn tails loudly);
* :mod:`repro.serve.workers` — spawn-safe handler factories for the
  supervised worker pool (:mod:`repro.resilience.supervisor`), plus the
  extensions digest used for byte-identity checks;
* :mod:`repro.serve.soak` — the ``repro chaos --serve`` soak: live
  traffic under an installed fault plan, asserting the exactly-once
  completeness invariant per connection;
* :mod:`repro.serve.crash` — the ``repro chaos --serve --crash`` gate:
  kill workers and the server mid-load, restart over the journal, and
  prove exactly-once completeness and byte-identical results.

See ``docs/SERVICE.md`` for the protocol reference, admission and
backpressure semantics, the SLO report fields, and the dead-letter
workflow; ``docs/RESILIENCE.md`` covers crash recovery and supervision.
"""

from repro.serve.admission import (
    AdmissionController,
    AdmissionDecision,
    TenantQuota,
    TokenBucket,
)
from repro.serve.protocol import (
    Frame,
    FrameError,
    FrameKind,
    decode_frames,
    encode_frame,
    pack_records,
    unpack_records,
)
from repro.serve.queue import (
    DeadLetter,
    DeadLetterQueue,
    MappingRequest,
    QueueFullError,
    RequestQueue,
    load_spool,
    load_spool_tolerant,
)
from repro.serve.journal import (
    JournalError,
    JournalRecovery,
    RequestJournal,
    recover_journal,
)
from repro.serve.slo import SLOReport, SLOTracker
from repro.serve.server import MappingService, ServiceConfig, ServiceHandle
from repro.serve.client import ClientReport, StreamingClient
from repro.serve.soak import run_soak
from repro.serve.crash import CrashGateError, run_crash_gate
from repro.serve.workers import extensions_digest

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "TenantQuota",
    "TokenBucket",
    "Frame",
    "FrameError",
    "FrameKind",
    "decode_frames",
    "encode_frame",
    "pack_records",
    "unpack_records",
    "DeadLetter",
    "DeadLetterQueue",
    "MappingRequest",
    "QueueFullError",
    "RequestQueue",
    "load_spool",
    "load_spool_tolerant",
    "JournalError",
    "JournalRecovery",
    "RequestJournal",
    "recover_journal",
    "SLOReport",
    "SLOTracker",
    "MappingService",
    "ServiceConfig",
    "ServiceHandle",
    "ClientReport",
    "StreamingClient",
    "run_soak",
    "CrashGateError",
    "run_crash_gate",
    "extensions_digest",
]
