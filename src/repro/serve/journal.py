"""The write-ahead request journal: crash-durable service state.

Crash-only serving needs exactly one durable artifact: an append-only
journal from which a restarted server can reconstruct its exactly-once
table.  Every admitted SUBMIT appends a ``submit`` record *before* the
request is enqueued (so acceptance is never acknowledged for work that
could vanish), and every terminal verdict appends a ``done`` record.
Recovery (:func:`recover_journal`) folds the records: ids with a
verdict repopulate the duplicate-result cache, ids without one are
readmitted exactly once, and a torn or corrupt tail — the signature of
a crash mid-append — is truncated at the last intact record with a
loud counter, never a crash and never silent data loss before it.

On-disk format (all integers big-endian)::

    magic   6 bytes   b"RPJL1\\n"
    record  [u32 length][u32 crc32(payload)][payload bytes]

Payloads are compact JSON objects: ``{"kind": "submit", "tenant", ...,
"request_id", "records_b64", "deadline", "trace"}`` or ``{"kind":
"done", "tenant", "request_id", "state", "payload"}``.  The CRC frames
each record independently, mirroring the seed-file design: damage is
isolated to the record it hit, and a decoder never reads past a
declared boundary.

Durability is fsync-batched: appends flush to the OS immediately and
fsync every ``fsync_batch`` records (and on :meth:`RequestJournal.sync`
/ :meth:`RequestJournal.close`), trading a bounded tail-loss window for
not paying an fsync per request.  ``journal_lag`` in
:meth:`RequestJournal.stats` is the number of appended-but-unsynced
records — the worst case a power loss can cost.
"""

from __future__ import annotations

import json
import os
import struct
import threading
import zlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.obs.metrics import MetricsRegistry

#: Journal file magic (versioned; bump for incompatible layouts).
MAGIC = b"RPJL1\n"

_RECORD_HEADER = struct.Struct("!II")

#: Hard per-record payload cap, mirroring the wire protocol's: a
#: declared length beyond it means the length field itself is corrupt.
MAX_RECORD = 1 << 26


class JournalError(ValueError):
    """The journal file is not a journal at all (bad magic)."""


@dataclass
class JournalRecovery:
    """What one recovery pass reconstructed from a journal.

    ``completed`` maps ``(tenant, request_id)`` to its terminal record
    (``{"state": "done"|"dead", "payload": {...}}``); ``incomplete``
    maps keys with a ``submit`` but no verdict to the submit record.
    ``truncated_records``/``truncated_bytes`` count the torn tail that
    was cut (0 for a clean journal).
    """

    completed: Dict[Tuple[str, str], Dict[str, object]]
    incomplete: Dict[Tuple[str, str], Dict[str, object]]
    truncated_records: int = 0
    truncated_bytes: int = 0

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready summary for STATS payloads and logs."""
        return {
            "recovered_completed": len(self.completed),
            "recovered_incomplete": len(self.incomplete),
            "truncated_records": self.truncated_records,
            "truncated_bytes": self.truncated_bytes,
        }


def _encode_record(record: Dict[str, object]) -> bytes:
    body = json.dumps(record, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")
    return _RECORD_HEADER.pack(len(body), zlib.crc32(body)) + body


class RequestJournal:
    """Append-only CRC-framed journal for one service instance.

    Thread-safe: the asyncio loop thread appends submits while mapping
    workers append verdicts.  Opened in append mode — recovery happens
    *before* construction via :func:`recover_journal`, which also
    truncates any torn tail, so appends always land on a clean record
    boundary.
    """

    def __init__(self, path: str, fsync_batch: int = 8,
                 registry: Optional[MetricsRegistry] = None):
        if fsync_batch < 1:
            raise ValueError("fsync_batch must be positive")
        self.path = path
        self.fsync_batch = fsync_batch
        self.registry = registry if registry is not None else MetricsRegistry()
        self._fsync_counter = self.registry.counter(
            "serve_journal_fsyncs_total", "Journal fsync barriers issued."
        )
        self._append_counter = self.registry.counter(
            "serve_journal_appends_total", "Journal records appended."
        )
        self._lag_gauge = self.registry.gauge(
            "serve_journal_lag",
            "Appended-but-unsynced journal records (the crash-loss window).",
        )
        self._lock = threading.Lock()
        fresh = not os.path.exists(path) or os.path.getsize(path) == 0
        self._handle = open(path, "ab")  # qa: guarded-by(self._lock)
        self._appends = 0  # qa: guarded-by(self._lock)
        self._fsyncs = 0  # qa: guarded-by(self._lock)
        self._unsynced = 0  # qa: guarded-by(self._lock)
        self._closed = False  # qa: guarded-by(self._lock)
        if fresh:
            with self._lock:
                self._handle.write(MAGIC)
                self._handle.flush()

    def append_submit(self, tenant: str, request_id: str, records_b64: str,
                      deadline: Optional[float] = None,
                      trace: Optional[Dict[str, str]] = None) -> None:
        """Journal one admitted SUBMIT (call before enqueueing it)."""
        record: Dict[str, object] = {
            "kind": "submit",
            "tenant": tenant,
            "request_id": request_id,
            "records_b64": records_b64,
        }
        if deadline is not None:
            record["deadline"] = deadline
        if trace:
            record["trace"] = trace
        self._append(record)

    def append_verdict(self, tenant: str, request_id: str, state: str,
                       payload: Dict[str, object]) -> None:
        """Journal one terminal verdict (``state`` is ``done``/``dead``)."""
        self._append({
            "kind": "done",
            "tenant": tenant,
            "request_id": request_id,
            "state": state,
            "payload": payload,
        })

    def _append(self, record: Dict[str, object]) -> None:
        encoded = _encode_record(record)
        with self._lock:
            if self._closed:
                return  # verdict raced shutdown; recovery readmits it
            self._handle.write(encoded)
            self._handle.flush()
            self._appends += 1
            self._unsynced += 1
            if self._unsynced >= self.fsync_batch:
                self._fsync_locked()
            lag = self._unsynced
        self._append_counter.inc()
        self._lag_gauge.set(lag)

    def _fsync_locked(self) -> None:
        # Callers hold self._lock.
        os.fsync(self._handle.fileno())
        self._fsyncs += 1  # qa: ignore[missing-lock-guard] — every caller holds self._lock
        self._unsynced = 0  # qa: ignore[missing-lock-guard] — every caller holds self._lock
        self._fsync_counter.inc()
        self._lag_gauge.set(0)

    def sync(self) -> None:
        """Force any batched appends to disk now."""
        with self._lock:
            if not self._closed and self._unsynced:
                self._fsync_locked()

    def close(self, sync: bool = True) -> None:
        """Close the journal; by default fsyncs the tail first.

        ``sync=False`` is the crash path: leave the tail in whatever
        durability state it happens to be, exactly as a power loss
        would.
        """
        with self._lock:
            if self._closed:
                return
            if sync and self._unsynced:
                self._fsync_locked()
            self._closed = True
            self._handle.close()

    def stats(self) -> Dict[str, int]:
        """Append/fsync counters plus the current unsynced lag."""
        with self._lock:
            return {
                "appends": self._appends,
                "fsyncs": self._fsyncs,
                "lag": self._unsynced,
            }


def recover_journal(path: str,
                    registry: Optional[MetricsRegistry] = None) -> JournalRecovery:
    """Replay a journal, truncating any torn tail; see module docstring.

    Returns an empty recovery when ``path`` does not exist.  Raises
    :class:`JournalError` only when the file exists but does not start
    with the journal magic — that is not a torn tail, it is the wrong
    file, and truncating it would destroy someone else's data.
    """
    registry = registry if registry is not None else MetricsRegistry()
    recovery = JournalRecovery(completed={}, incomplete={})
    if not os.path.exists(path):
        return recovery
    with open(path, "rb") as handle:
        data = handle.read()
    if data and not data.startswith(MAGIC):
        raise JournalError(f"{path} is not a request journal (bad magic)")
    offset = min(len(MAGIC), len(data))
    good_end = offset
    while True:
        if offset + _RECORD_HEADER.size > len(data):
            break
        length, crc = _RECORD_HEADER.unpack_from(data, offset)
        body_start = offset + _RECORD_HEADER.size
        if length > MAX_RECORD or body_start + length > len(data):
            break
        body = data[body_start:body_start + length]
        if zlib.crc32(body) != crc:
            break
        try:
            record = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            break
        if not isinstance(record, dict):
            break
        offset = body_start + length
        good_end = offset
        key = (str(record.get("tenant", "")), str(record.get("request_id", "")))
        if record.get("kind") == "submit":
            # A submit after a verdict is a readmission (the dead-letter
            # replay path): the id is live again, so the cached verdict
            # no longer stands.
            recovery.completed.pop(key, None)
            recovery.incomplete[key] = record
        elif record.get("kind") == "done":
            recovery.incomplete.pop(key, None)
            if record.get("state") == "rejected":
                # A cancelled write-ahead record (the enqueue lost the
                # depth race): the id was never admitted at all.
                recovery.completed.pop(key, None)
            else:
                recovery.completed[key] = {
                    "state": str(record.get("state", "done")),
                    "payload": record.get("payload") or {},
                }
    torn = len(data) - good_end
    if torn:
        recovery.truncated_records = 1
        recovery.truncated_bytes = torn
        registry.counter(
            "serve_journal_truncations_total",
            "Torn/corrupt journal tails truncated during recovery.",
        ).inc()
        with open(path, "r+b") as handle:
            handle.truncate(good_end)
    return recovery
