"""Worker-side mapping handlers for the supervised process pool.

The :class:`~repro.resilience.supervisor.SupervisedPool` ships batches
to spawn-based subprocesses, and spawn children cannot unpickle
closures — so the pool is configured with a
:class:`~repro.resilience.supervisor.HandlerSpec` naming a factory in
*this* module by dotted path.  Each worker child imports the factory,
materializes its own mapper once (deterministic: the same
``(input_set, scale)`` pair always builds the same pangenome), and then
serves ``{"records_b64": ...}`` payloads for its whole life.

Results cross the pipe as plain summaries (mapped counts, failed read
names, makespan) plus an **extensions digest** — a SHA-256 over the
canonical ``save_extensions`` serialization — so the parent can assert
byte-identical mapping output across worker deaths, restarts, and
journal recovery without shipping the extensions themselves.
"""

from __future__ import annotations

import hashlib
import io
from typing import Any, Callable, Dict, Optional, Sequence

from repro.core.io import save_extensions
from repro.serve.protocol import unpack_records


def extensions_digest(per_read: Dict[str, Sequence[Any]]) -> str:
    """SHA-256 of the canonical extension serialization.

    ``save_extensions`` writes reads in sorted order with fully
    deterministic varint encoding, so equal mappings — regardless of
    scheduler interleaving, worker identity, or restart count — always
    digest identically.  This is the byte-identity probe the crash
    gate compares against a fault-free run.
    """
    stream = io.BytesIO()
    save_extensions(per_read, stream)
    return hashlib.sha256(stream.getvalue()).hexdigest()


def build_mapping_handler(input_set: str, scale: float, threads: int = 1,
                          batch_size: int = 16, scheduler: str = "dynamic",
                          request_timeout: float = 5.0,
                          watchdog_factor: float = 8.0,
                          ) -> Callable[[Dict[str, Any]], Dict[str, Any]]:
    """Factory for the real mapping handler (runs in the worker child).

    Materializes the ``input_set`` preset at ``scale`` and wraps
    ``MiniGiraffe.map_reads`` under the same quarantine policy the
    thread-mode service uses, so a request maps to the identical
    verdict shape whichever execution mode served it.
    """
    from repro.core import MiniGiraffe, ProxyOptions
    from repro.giraffe import GiraffeMapper, GiraffeOptions
    from repro.resilience.policy import FailurePolicy, WatchdogConfig
    from repro.workloads.input_sets import INPUT_SETS, materialize

    bundle = materialize(INPUT_SETS[input_set], scale=scale)
    spec = bundle.spec
    parent = GiraffeMapper(
        bundle.pangenome.gbz,
        GiraffeOptions(minimizer_k=spec.minimizer_k,
                       minimizer_w=spec.minimizer_w),
    )
    proxy = MiniGiraffe(
        bundle.pangenome.gbz,
        ProxyOptions(threads=threads, batch_size=batch_size,
                     scheduler=scheduler),
        seed_span=spec.minimizer_k,
        distance_index=parent.distance_index,
    )
    policy = FailurePolicy.quarantine(
        watchdog=WatchdogConfig(factor=watchdog_factor,
                                min_deadline=request_timeout)
    )

    def handler(payload: Dict[str, Any]) -> Dict[str, Any]:
        """Map one packed batch; return the verdict summary."""
        records = unpack_records(str(payload["records_b64"]))
        result = proxy.map_reads(records, resilience=policy)
        failed = (
            list(result.completeness.failed_reads)
            if result.completeness is not None else []
        )
        return {
            "mapped_reads": result.mapped_reads,
            "extensions": len(result.extensions),
            "makespan": result.makespan,
            "failed_reads": failed,
            "extensions_digest": extensions_digest(result.extensions),
        }

    return handler


def build_shm_mapping_handler(segment: str, seed_span: int, threads: int = 1,
                              batch_size: int = 16,
                              scheduler: str = "dynamic",
                              request_timeout: float = 5.0,
                              watchdog_factor: float = 8.0,
                              ) -> Callable[[Dict[str, Any]], Dict[str, Any]]:
    """Factory for a mapping handler that attaches shared graph state.

    Instead of re-materializing the pangenome per worker child (what
    :func:`build_mapping_handler` pays on every restart), the child
    attaches the parent's :class:`repro.graph.shm.SharedMappingState`
    segment zero-copy and maps against it (``repro serve --workers N
    --shm``).  Requests and verdicts keep the exact shapes of the
    materializing handler, so the two are drop-in interchangeable; a
    missing or unlinked ``segment`` fails the child fast with a clear
    :class:`~repro.graph.shm.ShmStateError` rather than serving stale
    state.
    """
    from repro.core import MiniGiraffe, ProxyOptions
    from repro.graph.shm import SharedMappingState
    from repro.resilience.policy import FailurePolicy, WatchdogConfig

    state = SharedMappingState.attach(segment)
    proxy = MiniGiraffe(
        state.gbz(),
        ProxyOptions(threads=threads, batch_size=batch_size,
                     scheduler=scheduler),
        seed_span=seed_span,
    )
    policy = FailurePolicy.quarantine(
        watchdog=WatchdogConfig(factor=watchdog_factor,
                                min_deadline=request_timeout)
    )

    def handler(payload: Dict[str, Any]) -> Dict[str, Any]:
        """Map one packed batch against shared state; return the verdict."""
        records = unpack_records(str(payload["records_b64"]))
        result = proxy.map_reads(records, resilience=policy)
        failed = (
            list(result.completeness.failed_reads)
            if result.completeness is not None else []
        )
        return {
            "mapped_reads": result.mapped_reads,
            "extensions": len(result.extensions),
            "makespan": result.makespan,
            "failed_reads": failed,
            "extensions_digest": extensions_digest(result.extensions),
        }

    return handler


def build_stub_handler(latency: float = 0.0,
                       fail_reads: Optional[Sequence[str]] = None,
                       ) -> Callable[[Dict[str, Any]], Dict[str, Any]]:
    """Factory for a mapper-free handler (tests and the crash smoke).

    Decodes the records like the real handler but "maps" them by
    counting: every read not named in ``fail_reads`` is mapped, and the
    digest is a SHA-256 over the sorted read names — deterministic, so
    the crash gate's byte-identity comparison still has teeth without
    paying for pangenome materialization in every worker child.
    """
    import time as _time

    failing = frozenset(fail_reads or ())

    def handler(payload: Dict[str, Any]) -> Dict[str, Any]:
        """Pseudo-map one packed batch deterministically."""
        records = unpack_records(str(payload["records_b64"]))
        if latency > 0.0:
            _time.sleep(latency)
        failed = [r.name for r in records if r.name in failing]
        mapped = [r.name for r in records if r.name not in failing]
        digest = hashlib.sha256(
            "\n".join(sorted(mapped)).encode("utf-8")
        ).hexdigest()
        return {
            "mapped_reads": len(mapped),
            "extensions": len(mapped),
            "makespan": latency,
            "failed_reads": failed,
            "extensions_digest": digest,
        }

    return handler
