"""The ``repro chaos --serve --crash`` gate: crash the service, prove recovery.

The fault soak (:mod:`repro.serve.soak`) injects faults *inside* the
mapping worker and asserts exactly-once accounting on a server that
never dies.  This gate attacks the other half of the crash-only design:
it kills worker subprocesses mid-task (seeded SIGKILL and
heartbeat-stall hangs through :meth:`~repro.resilience.faults.FaultPlan.decide_worker`),
then hard-crashes the *server itself* mid-load, tears the journal tail
the way an interrupted append would, restarts a fresh service over the
same journal, and has the client resubmit everything.  The run passes
only when:

* **exactly-once completeness** holds across the crash: every request
  reaches exactly one terminal verdict per incarnation, ids completed
  before the crash come back as ``duplicate`` RESULTs served from the
  recovered cache, and ids the crash interrupted complete exactly once
  after restart;
* **byte-identity** holds: every RESULT's ``extensions_digest`` —
  before or after the crash, duplicate or fresh — equals the digest of
  a fault-free in-process run of the same handler on the same reads;
* **torn-tail truncation** is loud and lossless: recovery truncates
  exactly the garbage appended after the crash, counts it, and loses
  none of the intact records before it;
* **supervision engaged**: seeded worker kills forced restarts, and the
  sticky-kill request ends as a ``worker_death`` dead letter instead of
  wedging the pool.

Deterministic for a fixed seed: fault verdicts are pure functions of
``(plan seed, crc32(request id))``, so the same requests draw the same
kills and hangs on every run and on both sides of the crash.  Which
requests happen to settle *before* the crash point is scheduling
timing — the invariants above are written to hold for every
interleaving.
"""

from __future__ import annotations

import zlib
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.io import ReadRecord
from repro.obs.metrics import MetricsRegistry
from repro.resilience.faults import FaultPlan
from repro.resilience.supervisor import BackoffPolicy, BreakerConfig, HandlerSpec
from repro.serve.client import ClientReport, StreamingClient
from repro.serve.journal import _RECORD_HEADER, recover_journal
from repro.serve.protocol import pack_records
from repro.serve.queue import REASON_EXPIRED, REASON_WORKER_DEATH
from repro.serve.server import MappingService, ServiceConfig
from repro.util import timing
from repro.util.rng import derive_seed


class CrashGateError(AssertionError):
    """The crash gate's recovery invariant was violated."""


#: Request-id prefix; fault keys are crc32 over these ids, so the plan
#: scan and the service draw identical verdicts.
_PREFIX = "crash"

#: Bytes appended to simulate an append interrupted mid-record: a valid
#: header declaring 64 payload bytes, followed by only 4 of them.
_TORN_TAIL = _RECORD_HEADER.pack(64, 0) + b"torn"


def _request_ids(requests: int) -> List[str]:
    return [f"{_PREFIX}-{index:04d}" for index in range(requests)]


def _fault_key(request_id: str) -> int:
    return zlib.crc32(request_id.encode("utf-8"))


def _crash_plan(seed: int, requests: int) -> FaultPlan:
    """A fault plan guaranteed to exercise every supervision path.

    Scans seeds (the :func:`~repro.serve.soak._poison_plan` technique)
    for a plan whose worker verdicts over this run's actual fault keys
    include at least one transient kill (restart + retry completes), one
    sticky kill (the ``worker_death`` dead-letter path), and one
    transient hang (the heartbeat-stall liveness path) — while leaving
    at least a third of the requests clean and avoiding sticky hangs,
    whose repeated stall-detect-kill cycles would dominate the gate's
    wall clock without testing anything new.
    """
    keys = [_fault_key(request_id) for request_id in _request_ids(requests)]
    base = derive_seed(seed, "crash", "faults")
    for offset in range(4096):
        plan = FaultPlan(seed=base + offset, kill_rate=0.2, hang_rate=0.15,
                         sticky_rate=0.5, hang_duration=0.5)
        verdicts = [plan.decide_worker(key) for key in keys]
        clean = sum(1 for v in verdicts if not v.any)
        if (any(v.kill and not v.sticky for v in verdicts)
                and any(v.kill and v.sticky for v in verdicts)
                and any(v.hang > 0.0 and not v.sticky for v in verdicts)
                and not any(v.hang > 0.0 and v.sticky for v in verdicts)
                and clean >= requests // 3):
            return plan
    # ~4096 misses of a >10% joint event is unreachable in practice;
    # fall back to kills only rather than crash the gate itself.
    return FaultPlan(seed=base, kill_rate=0.3, sticky_rate=0.5)


def _batches(records: Sequence[ReadRecord], requests: int,
             batch_reads: int) -> List[List[ReadRecord]]:
    """Per-request batches with globally unique read names.

    Each request's reads are renamed with its index so every request
    digests differently — a verdict delivered to the wrong id can then
    never pass the byte-identity check by coincidence.
    """
    source = list(records)
    if not source:
        raise ValueError("crash gate needs at least one read")
    out: List[List[ReadRecord]] = []
    for index in range(requests):
        batch: List[ReadRecord] = []
        for position in range(batch_reads):
            record = source[position % len(source)]
            batch.append(ReadRecord(
                name=f"{record.name}@{index:04d}.{position}",
                sequence=record.sequence,
                seeds=record.seeds,
            ))
        out.append(batch)
    return out


def _service_config(journal_path: str, requests: int, workers: int,
                    spec: HandlerSpec, seed: int) -> ServiceConfig:
    """One config for both incarnations (identical tunables by design)."""
    return ServiceConfig(
        max_queue_depth=requests + 4,
        journal_path=journal_path,
        journal_fsync_batch=4,
        workers=workers,
        worker_spec=spec,
        worker_heartbeat_timeout=0.25,
        max_task_deaths=2,
        worker_backoff=BackoffPolicy(base=0.02, cap=0.25, seed=seed),
        worker_breaker=BreakerConfig(failure_threshold=4, open_duration=0.25),
    )


def _phase_a(handle, batches: List[List[ReadRecord]], crash_after: int,
             give_up: float) -> ClientReport:
    """Submit everything, absorb verdicts until the crash point.

    Drives the client's internal absorb machinery directly instead of
    :meth:`StreamingClient.stream` because the stream loop runs to full
    completion — and the whole point here is to walk away mid-load.
    """
    report = ClientReport()
    pending: Dict[str, Sequence[ReadRecord]] = {}
    attempts: Dict[str, int] = {}
    retry_at: List[Tuple[float, str]] = []
    with StreamingClient(handle.host, handle.port, "crash-tenant") as client:
        for request_id, batch in zip(_request_ids(len(batches)), batches):
            client.submit(request_id, batch)
            pending[request_id] = batch
            attempts[request_id] = 1
            report.reads_submitted += len(batch)
        while report.terminal_count < crash_after:
            if timing.now() > give_up:
                raise CrashGateError(
                    f"phase A stalled: {report.terminal_count} of "
                    f"{crash_after} pre-crash verdicts arrived in time"
                )
            now = timing.now()
            ready = [item for item in retry_at if item[0] <= now]
            if ready:
                retry_at = [item for item in retry_at if item[0] > now]
                for _, request_id in ready:
                    client.submit(request_id, pending[request_id])
            frame = client._try_recv(0.05)
            if frame is not None:
                client._absorb(frame, report, pending, attempts, retry_at, 8)
    return report


def run_crash_gate(records: Sequence[ReadRecord], journal_path: str,
                   requests: int = 18, batch_reads: int = 4,
                   workers: int = 2, seed: int = 0,
                   crash_after: Optional[int] = None,
                   spec: Optional[HandlerSpec] = None,
                   timeout: float = 120.0) -> Dict[str, object]:
    """Run the crash-recovery gate; returns a JSON-ready summary.

    Phase A starts a journaled, supervised service with a seeded
    worker-fault plan, streams ``requests`` batches at it, and calls
    :meth:`~repro.serve.server.MappingService.crash` once ``crash_after``
    (default: a third of the requests) terminal verdicts have landed.
    The journal tail is then torn mid-record, and phase B restarts a
    fresh service over the same journal and resubmits every id.  Raises
    :class:`CrashGateError` on any violated invariant (see module
    docstring); ``spec`` defaults to the deterministic stub handler, so
    the gate needs no pangenome.
    """
    if spec is None:
        spec = HandlerSpec("repro.serve.workers:build_stub_handler",
                           {"latency": 0.03})
    if crash_after is None:
        crash_after = max(1, requests // 3)
    give_up = timing.now() + timeout
    plan = _crash_plan(seed, requests)
    batches = _batches(records, requests, batch_reads)
    ids = _request_ids(requests)

    # Fault-free baseline: the same handler the workers build, run
    # in-process on the same reads — the digests every RESULT (either
    # phase, duplicate or fresh) must reproduce byte-identically.
    handler = spec.resolve()
    baseline = {
        request_id: str(handler(
            {"records_b64": pack_records(batch)}
        )["extensions_digest"])
        for request_id, batch in zip(ids, batches)
    }
    planned = {
        request_id: plan.decide_worker(_fault_key(request_id))
        for request_id in ids
    }
    sticky_kills = sorted(
        rid for rid, v in planned.items() if v.kill and v.sticky
    )

    config = _service_config(journal_path, requests, workers, spec, seed)
    registry_a = MetricsRegistry()
    service_a = MappingService(None, config, registry=registry_a,
                               worker_fault_plan=plan,
                               log=lambda message: None)
    handle_a = service_a.start()
    try:
        report_a = _phase_a(handle_a, batches, crash_after, give_up)
    finally:
        service_a.crash()
        handle_a.join(timeout=5.0)
    restarts_a = registry_a.counter(
        "supervisor_worker_restarts_total"
    ).total()

    violations: List[str] = []

    # Pre-tear ground truth: what the intact journal holds.  Verdicts
    # the client saw were journaled before delivery, so every terminal
    # id from phase A must already be durable.
    pre = recover_journal(journal_path)
    if pre.truncated_records:
        violations.append(
            "journal had a torn tail before the gate tore one"
        )
    for request_id in list(report_a.results) + list(report_a.dead_lettered):
        if ("crash-tenant", request_id) not in pre.completed:
            violations.append(
                f"{request_id}: client saw a verdict the journal lost"
            )
    with open(journal_path, "ab") as tail:
        tail.write(_TORN_TAIL)

    registry_b = MetricsRegistry()
    service_b = MappingService(None, config, registry=registry_b,
                               worker_fault_plan=plan,
                               log=lambda message: None)
    handle_b = service_b.start()
    try:
        recovery = service_b.recovery
        if recovery is None:
            raise CrashGateError("phase B service performed no recovery")
        if recovery.truncated_records != 1:
            violations.append(
                f"recovery truncated {recovery.truncated_records} tails "
                "(expected exactly the 1 the gate tore)"
            )
        if recovery.truncated_bytes != len(_TORN_TAIL):
            violations.append(
                f"recovery truncated {recovery.truncated_bytes} bytes, "
                f"expected {len(_TORN_TAIL)}"
            )
        if set(recovery.completed) != set(pre.completed):
            violations.append(
                "truncation lost intact completed records: "
                f"{sorted(set(pre.completed) ^ set(recovery.completed))}"
            )
        if set(recovery.incomplete) != set(pre.incomplete):
            violations.append(
                "truncation lost intact incomplete records: "
                f"{sorted(set(pre.incomplete) ^ set(recovery.incomplete))}"
            )

        with StreamingClient(handle_b.host, handle_b.port,
                             "crash-tenant") as client:
            report_b = client.stream(batches, request_prefix=_PREFIX,
                                     deadline=timeout)
            # The deadline-finality probe: an exhausted budget must be
            # rejected as ``expired`` and never retried — stream()
            # returning at all proves the client treated it as final.
            expired_probe = client.stream([batches[0]],
                                          request_prefix="crash-expired",
                                          deadline=0.0)
            slo = client.stats()
    finally:
        handle_b.stop()
        handle_b.join(timeout=10.0)
    restarts_b = registry_b.counter(
        "supervisor_worker_restarts_total"
    ).total()

    if report_b.terminal_count != requests:
        violations.append(
            f"phase B: {report_b.terminal_count} terminal verdicts "
            f"for {requests} requests"
        )
    if not report_b.complete:
        violations.append(
            f"phase B reads lost: submitted {report_b.reads_submitted}, "
            f"mapped {report_b.reads_mapped}, failed {report_b.reads_failed}"
        )
    for request_id, payload in sorted(report_a.results.items()):
        if str(payload.get("extensions_digest")) != baseline[request_id]:
            violations.append(
                f"{request_id}: pre-crash digest diverged from fault-free run"
            )
        follow_up = report_b.results.get(request_id)
        if follow_up is None:
            violations.append(
                f"{request_id}: completed pre-crash but not terminal "
                "as a RESULT after restart"
            )
        elif not follow_up.get("duplicate"):
            violations.append(
                f"{request_id}: completed pre-crash but re-executed "
                "after restart (not served from the recovered cache)"
            )
    for request_id, payload in sorted(report_b.results.items()):
        if str(payload.get("extensions_digest")) != baseline[request_id]:
            violations.append(
                f"{request_id}: post-restart digest diverged from "
                "fault-free run"
            )
    for request_id in sticky_kills:
        payload = report_b.dead_lettered.get(request_id)
        if payload is None:
            violations.append(
                f"{request_id}: sticky kill planned but no dead letter"
            )
        elif payload.get("reason") != REASON_WORKER_DEATH:
            violations.append(
                f"{request_id}: sticky kill dead-lettered as "
                f"{payload.get('reason')!r}, expected "
                f"{REASON_WORKER_DEATH!r}"
            )
    if restarts_a + restarts_b <= 0:
        violations.append(
            "no worker restarts across either incarnation — the "
            "supervision path went unexercised"
        )
    if len(expired_probe.rejected) != 1:
        violations.append(
            "expired-deadline probe did not end as a final rejection"
        )
    else:
        probe = next(iter(expired_probe.rejected.values()))
        if probe.get("reason") != REASON_EXPIRED:
            violations.append(
                f"expired-deadline probe rejected as "
                f"{probe.get('reason')!r}, expected {REASON_EXPIRED!r}"
            )
    truncations = registry_b.counter(
        "serve_journal_truncations_total"
    ).total()
    if truncations != 1:
        violations.append(
            f"serve_journal_truncations_total={truncations}, expected 1"
        )
    if violations:
        raise CrashGateError("; ".join(violations))

    return {
        "ok": True,
        "requests": requests,
        "crash_after": crash_after,
        "pre_crash_verdicts": report_a.terminal_count,
        "phase_a": report_a.to_dict(),
        "phase_b": report_b.to_dict(),
        "recovery": recovery.to_dict(),
        "planned_faults": {
            "kills": sum(1 for v in planned.values() if v.kill),
            "sticky_kills": len(sticky_kills),
            "hangs": sum(1 for v in planned.values() if v.hang > 0.0),
        },
        "worker_restarts": {"phase_a": restarts_a, "phase_b": restarts_b},
        "deadline_probe": "expired-final",
        "slo": slo,
    }
