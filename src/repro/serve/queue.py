"""The bounded request queue and the dead-letter queue.

Accepted submissions become :class:`MappingRequest` objects and wait in
a :class:`RequestQueue` — a small bounded FIFO whose depth ceiling *is*
the service's backpressure signal (admission consults it before
enqueueing; see :mod:`repro.serve.admission`).  The mapping worker pops
requests, runs the proxy, and delivers a terminal verdict per request.

Requests that fail terminally — quarantined by the failure policy,
expired past their queue deadline, or broken in transit — land in the
:class:`DeadLetterQueue` instead of vanishing: each
:class:`DeadLetter` keeps the tenant, request id, reason, failed read
names, and (when available) the original records payload, so the queue
can be **inspected** (``repro dlq --inspect``), **drained**
(``repro dlq --drain``), and **replayed** (``repro dlq --replay``)
through the normal submission path.  Replay is idempotent: the server's
exactly-once table readmits a dead-lettered request id exactly once,
and a second replay reports duplicates instead of remapping.
"""

from __future__ import annotations

import json
import threading
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional

from repro.core.io import ReadRecord
from repro.obs.context import TraceContext


class QueueFullError(RuntimeError):
    """An enqueue was attempted past the queue's depth ceiling."""


@dataclass
class MappingRequest:
    """One admitted submission waiting for (or undergoing) mapping.

    ``deliver`` is the connection's completion callback — the server
    re-points it when a reconnecting client resubmits the same request
    id, so results follow the *live* connection.  ``enqueued_at`` is a
    monotonic reading used for queue-deadline expiry and latency
    accounting.
    """

    tenant: str
    request_id: str
    records: List[ReadRecord]
    enqueued_at: float
    deliver: Optional[Callable[[int, Dict[str, object]], None]] = None
    records_b64: Optional[str] = None
    #: The client's trace context from the SUBMIT frame (protocol v2):
    #: server-side spans for this request parent under it.  Pinned at
    #: first admission — a reconnect re-points ``deliver`` but keeps the
    #: original trace tree intact.
    context: Optional[TraceContext] = None
    #: Absolute monotonic deadline (protocol v3): the ``timing.now()``
    #: reading past which the request's budget is spent.  None means no
    #: deadline.  The monotonic clock does not survive a restart, so
    #: journal recovery re-arms the original *relative* budget from the
    #: moment of readmission.
    expires_at: Optional[float] = None

    @property
    def key(self) -> tuple:
        """The exactly-once identity: ``(tenant, request_id)``."""
        return (self.tenant, self.request_id)

    @property
    def read_count(self) -> int:
        """Number of reads in the submission (the admission cost)."""
        return len(self.records)

    def expired(self, now: float) -> bool:
        """True when the request's deadline budget is already spent."""
        return self.expires_at is not None and now >= self.expires_at


class RequestQueue:
    """A bounded, thread-safe FIFO of :class:`MappingRequest`.

    ``put`` raises :class:`QueueFullError` at the ceiling instead of
    blocking — backpressure must surface as a REJECT frame, never as a
    stalled reader.  ``get`` blocks with a timeout so the mapping worker
    can wake up to observe shutdown.
    """

    def __init__(self, max_depth: int):
        if max_depth < 1:
            raise ValueError("max_depth must be positive")
        self.max_depth = max_depth
        self._ready = threading.Condition()
        self._items: Deque[MappingRequest] = deque()  # qa: guarded-by(self._ready)

    def depth(self) -> int:
        """Current number of queued requests."""
        with self._ready:
            return len(self._items)

    def put(self, request: MappingRequest, force: bool = False) -> None:
        """Enqueue, or raise :class:`QueueFullError` at the ceiling.

        ``force`` bypasses the ceiling — reserved for journal recovery,
        whose requests were already admitted (and journaled) by the
        previous incarnation and must not be re-judged against the new
        process's empty token buckets.
        """
        with self._ready:
            if not force and len(self._items) >= self.max_depth:
                raise QueueFullError(
                    f"queue depth {len(self._items)} at ceiling "
                    f"{self.max_depth}"
                )
            self._items.append(request)
            self._ready.notify()

    def get(self, timeout: float = 0.1) -> Optional[MappingRequest]:
        """Dequeue the oldest request, or None after ``timeout`` seconds."""
        with self._ready:
            if not self._items:
                self._ready.wait(timeout)
            if not self._items:
                return None
            return self._items.popleft()


#: Dead-letter reasons (the wire-visible vocabulary).
REASON_QUARANTINED = "quarantined"
REASON_TIMEOUT = "timeout"
REASON_ERROR = "error"
REASON_EXPIRED = "expired"
REASON_WORKER_DEATH = "worker_death"


@dataclass(frozen=True)
class DeadLetter:
    """One terminally failed request, preserved for inspection/replay.

    ``failed_reads`` names the reads the failure policy quarantined
    (every read of the request for timeouts and transport errors);
    ``records_b64`` carries the original submission payload when the
    service was configured to keep it, which is what makes offline
    replay possible.
    """

    tenant: str
    request_id: str
    reason: str
    error: str
    read_count: int
    failed_reads: tuple
    records_b64: Optional[str] = None

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready representation (spool lines, DLQ_DUMP frames)."""
        payload: Dict[str, object] = {
            "tenant": self.tenant,
            "request_id": self.request_id,
            "reason": self.reason,
            "error": self.error,
            "read_count": self.read_count,
            "failed_reads": sorted(self.failed_reads),
        }
        if self.records_b64 is not None:
            payload["records_b64"] = self.records_b64
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "DeadLetter":
        """Inverse of :meth:`to_dict` (spool loading)."""
        return cls(
            tenant=str(payload["tenant"]),
            request_id=str(payload["request_id"]),
            reason=str(payload["reason"]),
            error=str(payload.get("error", "")),
            read_count=int(payload.get("read_count", 0)),
            failed_reads=tuple(payload.get("failed_reads", ())),
            records_b64=payload.get("records_b64"),
        )


class DeadLetterQueue:
    """Thread-safe store of :class:`DeadLetter` entries with a spool.

    Entries accumulate in order; ``drain`` atomically removes and
    returns everything (the ``repro dlq --drain`` verb).  When a spool
    path is configured every entry is also appended to the JSONL spool
    as it arrives, so dead letters survive a service crash and can be
    inspected or replayed offline.
    """

    def __init__(self, spool_path: Optional[str] = None):
        self.spool_path = spool_path
        self._lock = threading.Lock()
        self._entries: List[DeadLetter] = []  # qa: guarded-by(self._lock)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def push(self, entry: DeadLetter) -> None:
        """Record one dead letter (and append it to the spool, if any)."""
        with self._lock:
            self._entries.append(entry)
            if self.spool_path:
                with open(self.spool_path, "a", encoding="utf-8") as handle:
                    json.dump(entry.to_dict(), handle, sort_keys=True)
                    handle.write("\n")

    def snapshot(self) -> List[DeadLetter]:
        """A copy of the current entries (``--inspect``)."""
        with self._lock:
            return list(self._entries)

    def drain(self) -> List[DeadLetter]:
        """Atomically remove and return every entry (``--drain``)."""
        with self._lock:
            entries, self._entries = self._entries, []
            return entries

    def to_dicts(self) -> List[Dict[str, object]]:
        """JSON-ready snapshot, oldest first."""
        return [entry.to_dict() for entry in self.snapshot()]


def load_spool_tolerant(path: str) -> "tuple[List[DeadLetter], int]":
    """Read a dead-letter spool, skipping damaged lines with a count.

    A service that crashes mid-append leaves a truncated final line;
    mirroring ``load_seed_file_tolerant``, every intact entry is kept
    and each undecodable line is skipped and counted instead of
    aborting the load.  Returns ``(entries, skipped)``.
    """
    entries: List[DeadLetter] = []
    skipped = 0
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                entries.append(DeadLetter.from_dict(json.loads(line)))
            except (json.JSONDecodeError, KeyError, TypeError, ValueError):
                skipped += 1
    return entries, skipped


def load_spool(path: str) -> List[DeadLetter]:
    """Read a dead-letter JSONL spool written by :class:`DeadLetterQueue`.

    Tolerant of a truncated final line (crash mid-append) — use
    :func:`load_spool_tolerant` to also learn how many lines were
    skipped.
    """
    entries, _ = load_spool_tolerant(path)
    return entries
