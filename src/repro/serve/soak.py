"""The ``repro chaos --serve`` soak: faults under live service traffic.

The batch-mode chaos harness proves the resilience layer keeps the
*scheduler* honest; this soak proves the same invariant end-to-end
through the service: with a seeded :class:`~repro.resilience.faults.FaultPlan`
installed process-wide (so injected raises, delays, and cache storms
fire inside the mapping worker), multiple tenants stream open-loop
traffic at a live server and every connection's
:class:`~repro.serve.client.ClientReport` must still satisfy the
exactly-once completeness invariant:

* every submitted request reaches exactly one terminal verdict;
* every submitted read is accounted — mapped in a RESULT, named in a
  DEAD_LETTER's ``failed_reads``, or part of a finally-rejected batch;
* every DEAD_LETTER verdict has a matching entry in the server's
  dead-letter queue (quarantined work is parked, never lost).

Since protocol v2 the soak also audits the *trace trees* under fault
injection: the server runs with a live :class:`~repro.obs.trace.Tracer`
and after the run every dead-lettered request must have a closed
``serve.request`` span with ``status="error"``, every completed request
one with ``status="ok"``, no admitted request may leak an open span
(span counts must equal terminal verdict counts — an unclosed span is
never emitted), every request tree must stay connected, and the ring
buffer must not have dropped spans mid-soak.

The soak is deterministic for a fixed ``(seed, plan, pattern)`` triple:
traffic schedules come from seeded arrival processes and the fault plan
decides per batch index, so CI replays identical runs.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Sequence

from repro.analysis.attribution import attribute
from repro.core.io import ReadRecord
from repro.core.proxy import MiniGiraffe
from repro.obs.trace import SpanEvent, Tracer
from repro.resilience.faults import FaultPlan
from repro.serve.client import ClientReport, StreamingClient
from repro.serve.server import MappingService, ServiceConfig
from repro.util.rng import derive_seed
from repro.workloads.traffic import TrafficPattern


class SoakError(AssertionError):
    """The soak's exactly-once completeness invariant was violated."""


def _tenant_worker(host: str, port: int, tenant: str,
                   batches: Sequence[Sequence[ReadRecord]],
                   gaps: Sequence[float],
                   reports: Dict[str, ClientReport],
                   errors: List[str]) -> None:
    """One tenant's connection: stream every batch, keep the report."""
    try:
        with StreamingClient(host, port, tenant) as client:
            reports[tenant] = client.stream(
                batches, gaps=gaps, request_prefix=tenant
            )
    except Exception as error:  # qa: ignore[broad-except] — surfaced as a soak failure below
        errors.append(f"tenant {tenant}: {type(error).__name__}: {error}")


def _poison_plan(seed: int, scheduler_batch: int) -> FaultPlan:
    """A fault plan guaranteed to quarantine multi-batch requests.

    Fault decisions are a pure function of (plan seed, batch start
    index), and every ``map_reads`` call numbers its batches from 0 —
    so identical requests always draw identical faults.  To make the
    soak's outcome mix deterministic, scan for a seed whose plan leaves
    batch 0 clean but sticky-raises in the batch starting at
    ``scheduler_batch``: single-batch requests then always complete,
    and any request spanning a second batch always dead-letters.
    """
    base = derive_seed(seed, "soak", "faults")
    for offset in range(4096):
        plan = FaultPlan(seed=base + offset, raise_rate=0.5,
                         delay_rate=0.2, sticky_rate=1.0, max_delay=0.002)
        first = plan.decide(0)
        second = plan.decide(scheduler_batch)
        if (not first.raise_fault) and second.raise_fault and second.sticky:
            return plan
    # 4096 misses of a ~12.5% event is unreachable in practice; fall
    # back to an unconditionally poisonous plan rather than crash.
    return FaultPlan(seed=base, raise_rate=1.0, sticky_rate=1.0)


def _cycle_reads(records: Sequence[ReadRecord], count: int) -> List[ReadRecord]:
    """The first ``count`` reads, cycling ``records`` as needed.

    Repeats are renamed (``name#2``, ``name#3``, …): both the proxy's
    extension table and the completeness report are keyed by read name,
    so duplicate names inside one request would silently collapse and
    break the soak's read-conservation arithmetic.
    """
    out: List[ReadRecord] = []
    cycle = 1
    while len(out) < count:
        for record in records[:count - len(out)]:
            if cycle == 1:
                out.append(record)
            else:
                out.append(ReadRecord(name=f"{record.name}#{cycle}",
                                      sequence=record.sequence,
                                      seeds=record.seeds))
        cycle += 1
    return out


def _audit_trace_trees(spans: Sequence[SpanEvent], dropped: int,
                       reports: Dict[str, ClientReport]) -> List[str]:
    """Check the soak's trace-tree invariants; returns violations.

    Faults must not corrupt causal tracing: each terminal verdict the
    clients saw must be mirrored by exactly one closed ``serve.request``
    span with the matching status, trees must stay connected, and
    nothing may leak open (open spans are never emitted, so a missing
    span *is* the leak detector).
    """
    violations: List[str] = []
    if dropped:
        violations.append(
            f"tracer dropped {dropped} spans mid-soak (ring overflow)"
        )
    request_spans: Dict[tuple, List[SpanEvent]] = {}
    for span in spans:
        if span.name == "serve.request":
            key = (span.attrs.get("tenant"), span.attrs.get("request_id"))
            request_spans.setdefault(key, []).append(span)

    admitted = 0
    for tenant, report in sorted(reports.items()):
        for request_id, want in (
            list((rid, "ok") for rid in report.results)
            + list((rid, "error") for rid in report.dead_lettered)
        ):
            admitted += 1
            closed = request_spans.get((tenant, request_id), [])
            if len(closed) != 1:
                violations.append(
                    f"{tenant}/{request_id}: {len(closed)} closed "
                    "serve.request spans (expected exactly 1 — "
                    "0 means the span leaked open)"
                )
            elif closed[0].status != want:
                violations.append(
                    f"{tenant}/{request_id}: serve.request "
                    f"status={closed[0].status!r}, expected {want!r}"
                )
    extra = len([s for s in spans if s.name == "serve.request"]) - admitted
    if extra > 0:
        violations.append(
            f"{extra} serve.request spans beyond the terminal verdicts"
        )
    report = attribute(spans, dropped_spans=dropped)
    for summary in report.traces:
        if not summary.joined:
            violations.append(
                f"trace {summary.trace_id}: disconnected span tree "
                f"({summary.span_count} spans)"
            )
    return violations


def run_soak(mapper: MiniGiraffe, records: Sequence[ReadRecord],
             tenants: int = 2, requests_per_tenant: int = 8,
             batch_reads: int = 4, seed: int = 0,
             plan: Optional[FaultPlan] = None,
             pattern: Optional[TrafficPattern] = None,
             config: Optional[ServiceConfig] = None) -> Dict[str, object]:
    """Run the chaos soak; returns a JSON-ready summary.

    Starts an in-process :class:`MappingService` over ``mapper``,
    installs ``plan`` (default: a :func:`_poison_plan` that quarantines
    exactly the oversized requests), streams ``requests_per_tenant``
    requests from each of ``tenants`` concurrent tenant connections on
    ``pattern`` schedules, then checks the exactly-once invariants.
    Every third request is oversized to span two scheduler batches, so
    under the default plan the run produces both completed and
    dead-lettered verdicts.  Raises :class:`SoakError` on any
    violation (including a default-plan run that dead-letters
    nothing); the summary's ``"ok"`` field is True otherwise.
    """
    scheduler_batch = mapper.options.batch_size
    require_dead_letters = plan is None
    if plan is None:
        plan = _poison_plan(seed, scheduler_batch)
    if pattern is None:
        pattern = TrafficPattern(process="poisson", rate=200.0)
    if config is None:
        config = ServiceConfig(max_queue_depth=max(8, tenants * 4))

    records = list(records)
    if not records:
        raise ValueError("soak needs at least one read")
    small = max(1, min(batch_reads, scheduler_batch))
    batches: List[List[ReadRecord]] = []
    for index in range(requests_per_tenant):
        if index % 3 == 2:
            # Oversized: spans a second scheduler batch, which the
            # default plan sticky-poisons — the dead-letter path.
            batches.append(_cycle_reads(records, scheduler_batch + small))
        else:
            batches.append(_cycle_reads(records, small))

    tracer = Tracer()
    service = MappingService(mapper, config, tracer=tracer)
    handle = service.start()
    reports: Dict[str, ClientReport] = {}
    errors: List[str] = []
    try:
        with plan.install() as injector:
            threads = []
            for index in range(tenants):
                tenant = f"tenant-{index}"
                gaps = pattern.gaps(
                    len(batches), derive_seed(seed, "soak", tenant)
                )
                thread = threading.Thread(
                    target=_tenant_worker,
                    args=(handle.host, handle.port, tenant, batches, gaps,
                          reports, errors),
                    name=f"soak-{tenant}",
                )
                thread.start()
                threads.append(thread)
            for thread in threads:
                thread.join()

        with StreamingClient(handle.host, handle.port, "soak-control") as ctl:
            slo = ctl.stats()
            dlq_entries = ctl.dlq_dump(inspect=True)
    finally:
        handle.stop()
        handle.join(timeout=10.0)

    if errors:
        raise SoakError("; ".join(errors))

    dlq_keys = {(e["tenant"], e["request_id"]) for e in dlq_entries}
    violations: List[str] = []
    for tenant, report in sorted(reports.items()):
        if report.terminal_count != requests_per_tenant:
            violations.append(
                f"{tenant}: {report.terminal_count} terminal verdicts "
                f"for {requests_per_tenant} requests"
            )
        if not report.complete:
            violations.append(
                f"{tenant}: reads lost — submitted {report.reads_submitted}, "
                f"mapped {report.reads_mapped}, failed {report.reads_failed}"
            )
        for request_id in report.dead_lettered:
            if (tenant, request_id) not in dlq_keys:
                violations.append(
                    f"{tenant}: dead-lettered {request_id} missing from DLQ"
                )
    spans = tracer.spans()
    violations.extend(_audit_trace_trees(spans, tracer.ring.dropped, reports))
    total_dead = sum(len(r.dead_lettered) for r in reports.values())
    total_completed = sum(len(r.results) for r in reports.values())
    if require_dead_letters and total_dead == 0:
        violations.append(
            "default poison plan produced no dead letters — the DLQ "
            "path went unexercised"
        )
    if require_dead_letters and total_completed == 0:
        violations.append(
            "default poison plan completed no requests — the RESULT "
            "path went unexercised"
        )
    if violations:
        raise SoakError("; ".join(violations))

    return {
        "ok": True,
        "tenants": {t: r.to_dict() for t, r in sorted(reports.items())},
        "injected_raises": injector.injected_raises,
        "injected_delays": injector.injected_delays,
        "dead_letter_queue": len(dlq_entries),
        "slo": slo,
        "trace": {
            "spans": len(spans),
            "request_spans": sum(
                1 for span in spans if span.name == "serve.request"
            ),
            "error_spans": sum(1 for span in spans if span.is_error),
            "dropped_spans": tracer.ring.dropped,
        },
    }
