"""Command-line interface: the miniGiraffe executable surface.

The real miniGiraffe is a command-line tool taking a GBZ, a captured
``sequence-seeds.bin``, and flags for threads / batch size / CachedGBWT
capacity / instrumentation.  This module provides the same surface plus
the surrounding workflow the artifact scripts drive:

* ``generate`` — materialize an input-set preset: write the ``.gbz``,
  the ``sequence-seeds.bin``, and the parent's expected extensions;
* ``map`` — run the proxy over a GBZ + seed file (the miniGiraffe
  binary itself), writing extensions and optional GAM output;
* ``validate`` — two modes: compare two extension files (paper Section
  VI-a), or — with ``--input-set``/``--smoke`` — run the parent mapper
  and the proxy on the same workload and emit the Table V/VI-style
  fidelity report (counter-vector cosine similarity, execution-time
  delta, bit-identical extension check) with pass/fail thresholds;
* ``trace`` — run the proxy with the observability layer enabled:
  structured spans to JSONL, metrics to a Prometheus-style dump, and a
  Figure 3-style per-region breakdown on stdout; ``--attribute`` (with
  ``--spans`` or ``--serve``) reconstructs per-request trace trees and
  prints the critical-path latency attribution instead;
* ``profile`` — the continuous sampling profiler: run a mapping
  workload while sampling every thread stack on a seeded-jitter
  interval; write flamegraph-ready collapsed stacks;
* ``chaos`` — run the proxy under a seeded, deterministic fault plan
  (injected exceptions, delays, cache-eviction storms, optional seed
  stream corruption) with a quarantine/retry failure policy, assert the
  exactly-once invariant, and emit a reproducible JSON report;
* ``bench`` — the continuous benchmark harness: run the declared
  configuration suite (``--smoke`` for the CI subset), write a
  schema-versioned ``BENCH_<timestamp>.json``, and gate against
  ``benchmarks/baseline.json`` (non-zero exit on regression);
* ``tune`` — the autotuning sweep: by default predicted on a machine
  model (CSV out); with ``--measured`` the real proxy runs the grid and
  a Table VIII-style best-config report is printed (``--smoke`` for the
  2×2×2 CI mini-sweep, ``--bench-out`` to record the sweep as a
  ``BENCH_*.json``);
* ``scale`` — the Figure 5 scaling prediction for one input set;
* ``serve`` — the long-running mapping service: a framed-socket
  front-end with per-tenant admission control, SLO tracking, and a
  dead-letter queue (``chaos --serve`` soaks it under injected faults);
* ``submit`` — the bundled streaming client: open-loop traffic at a
  running service, collecting every verdict into a completeness report;
* ``dlq`` — inspect, drain, or replay the service's dead-letter queue;
* ``top`` — live service view: per-tenant throughput, queue depth,
  dead-letter backlog, and rolling latency percentiles;
* ``docs`` — the docs-drift gate: every subcommand and flag above must
  appear in the docs tree (``lint`` and ``races`` cover the code side).

Run ``python -m repro <command> --help`` for per-command flags.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import List, Optional

from repro.core import MiniGiraffe, ProxyOptions, compare_outputs
from repro.core.io import (
    load_extensions_path,
    load_seed_file_path,
    save_extensions_path,
    save_seed_file_path,
)
from repro.gbwt.gbz import save_gbz_file
from repro.giraffe import GiraffeMapper, GiraffeOptions
from repro.giraffe.gam import write_gam_file
from repro.giraffe.alignment import alignments_from_extensions
from repro.sim.exec_model import ExecutionModel, OutOfMemoryError, TuningConfig
from repro.sim.platform import PLATFORMS
from repro.sim.profiler import profile_workload
from repro.tuning import GridSearch, ResultStore
from repro.workloads.input_sets import INPUT_SETS, materialize
from repro.workloads.traffic import PROCESSES as TRAFFIC_PROCESSES


#: The canned race audits ``repro races`` offers.  Kept as a literal so
#: building the parser never imports the analysis stack; the dispatch in
#: ``_cmd_races`` resolves the names against ``repro.qa.audits.AUDITS``
#: (a unit test asserts the two stay in sync).
AUDIT_NAMES = ("chaos", "proxy", "schedulers")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="miniGiraffe reproduction command-line interface",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    generate = commands.add_parser(
        "generate", help="materialize an input set: gbz + seeds + expected output"
    )
    generate.add_argument("--input-set", choices=sorted(INPUT_SETS), required=True)
    generate.add_argument("--scale", type=float, default=0.1)
    generate.add_argument("--out-dir", default=".")

    map_cmd = commands.add_parser(
        "map", help="run the proxy over a gbz + sequence-seeds.bin"
    )
    map_cmd.add_argument("--gbz", required=True)
    map_cmd.add_argument("--seeds", required=True)
    map_cmd.add_argument("--threads", type=int, default=1)
    map_cmd.add_argument("--batch-size", type=int, default=512)
    map_cmd.add_argument("--cache-capacity", type=int, default=256)
    map_cmd.add_argument(
        "--scheduler", choices=("dynamic", "static", "work_stealing"),
        default="dynamic",
    )
    map_cmd.add_argument("--seed-span", type=int, default=13)
    map_cmd.add_argument(
        "--workers", type=int, default=0,
        help="map through the shared-memory process pool with this many "
             "worker processes (0 = in-process thread schedulers)",
    )
    map_cmd.add_argument(
        "--shards", type=int, default=0,
        help="shard count for process-pool affinity (0 = one per worker)",
    )
    map_cmd.add_argument("--instrument", action="store_true")
    map_cmd.add_argument("--output", help="write extensions to this file")
    map_cmd.add_argument("--gam", help="write JSON-lines alignments here")

    validate = commands.add_parser(
        "validate",
        help="compare extension files, or run the proxy-fidelity gate "
             "(--input-set / --smoke)",
    )
    validate.add_argument("--expected", help="expected extension file")
    validate.add_argument("--actual", help="actual extension file")
    validate.add_argument(
        "--input-set", choices=sorted(INPUT_SETS),
        help="fidelity mode: run parent + proxy on this preset",
    )
    validate.add_argument(
        "--smoke", action="store_true",
        help="fidelity mode on the CI smoke workload (tiny scale, "
             "relaxed time threshold)",
    )
    validate.add_argument("--scale", type=float, default=0.1)
    validate.add_argument("--threads", type=int, default=1)
    validate.add_argument("--batch-size", type=int, default=64)
    validate.add_argument("--cache-capacity", type=int, default=256)
    validate.add_argument(
        "--scheduler", choices=("dynamic", "static", "work_stealing"),
        default="dynamic",
    )
    validate.add_argument(
        "--repeats", type=int, default=3,
        help="best-of-N timing repeats per application",
    )
    validate.add_argument(
        "--cosine-threshold", type=float, default=None,
        help="counter cosine-similarity floor (default: paper's 0.999)",
    )
    validate.add_argument(
        "--time-threshold", type=float, default=None,
        help="|exec-time delta| ceiling as a fraction (default: paper's "
             "0.087; 0.4 in --smoke mode)",
    )
    validate.add_argument(
        "--platform", choices=sorted(PLATFORMS), default="local-intel",
        help="platform model for the simulated hardware counters",
    )
    validate.add_argument("--json", help="also write the result as JSON here")

    bench = commands.add_parser(
        "bench",
        help="run the benchmark suite; write BENCH_<timestamp>.json and "
             "gate against a baseline",
    )
    bench.add_argument(
        "--smoke", action="store_true",
        help="run the two-config CI subset instead of the full grid",
    )
    bench.add_argument(
        "--parallel", action="store_true",
        help="run the process-pool scaling suite (threaded anchor plus "
             "1/2/4-worker points) instead of the full grid",
    )
    bench.add_argument(
        "--out-dir", default=".",
        help="directory for BENCH_<timestamp>.json (default: repo root)",
    )
    bench.add_argument(
        "--baseline", default=os.path.join("benchmarks", "baseline.json"),
        help="baseline report to gate against (skipped when missing)",
    )
    bench.add_argument(
        "--update-baseline", action="store_true",
        help="overwrite the baseline with this run instead of gating",
    )
    bench.add_argument(
        "--threshold", type=float, default=0.5,
        help="relative wall-time regression threshold",
    )
    bench.add_argument(
        "--ops-threshold", type=float, default=0.10,
        help="relative kernel-operation-count regression threshold",
    )
    bench.add_argument(
        "--platform", choices=sorted(PLATFORMS), default="local-intel",
        help="platform model for the software-counter vectors",
    )

    trace = commands.add_parser(
        "trace",
        help="run the proxy with tracing on; emit spans (JSONL) + metrics",
    )
    source = trace.add_mutually_exclusive_group(required=True)
    source.add_argument(
        "--input-set", choices=sorted(INPUT_SETS),
        help="materialize this preset in memory instead of reading files",
    )
    source.add_argument("--gbz", help="pangenome file (pairs with --seeds)")
    source.add_argument("--spans",
                        help="attribute an existing span JSONL instead of "
                             "running anything (requires --attribute)")
    trace.add_argument("--seeds", help="captured sequence-seeds.bin")
    trace.add_argument("--scale", type=float, default=0.1,
                       help="input-set scale when using --input-set")
    trace.add_argument("--seed-span", type=int, default=13)
    trace.add_argument("--threads", type=int, default=2)
    trace.add_argument("--batch-size", type=int, default=64)
    trace.add_argument("--cache-capacity", type=int, default=256)
    trace.add_argument(
        "--scheduler", choices=("dynamic", "static", "work_stealing"),
        default="work_stealing",
        help="work_stealing by default so steal metrics are exercised",
    )
    trace.add_argument("--out", default="trace.jsonl",
                       help="span JSONL output path")
    trace.add_argument("--metrics-out",
                       help="also write the Prometheus-style metrics dump here")
    trace.add_argument("--ring-capacity", type=int, default=1 << 16,
                       help="span ring-buffer capacity (oldest spans evicted)")
    trace.add_argument("--attribute", action="store_true",
                       help="per-request critical-path attribution: trace "
                            "trees, per-stage p50/p99, join completeness "
                            "(with --spans or --serve)")
    trace.add_argument("--serve", action="store_true",
                       help="run an in-process served workload (with "
                            "--input-set) and attribute client-to-kernel "
                            "trace trees; exits 1 below 100%% join "
                            "completeness")
    trace.add_argument("--tenants", type=int, default=2,
                       help="with --serve: concurrent tenant connections")
    trace.add_argument("--requests", type=int, default=6,
                       help="with --serve: requests streamed per tenant")
    trace.add_argument("--batch-reads", type=int, default=4,
                       help="with --serve: reads per request")
    trace.add_argument("--json",
                       help="write the attribution report as JSON here")

    profile = commands.add_parser(
        "profile",
        help="run the proxy under the continuous sampling profiler; "
             "write collapsed stacks (flamegraph input)",
    )
    profile.add_argument("--input-set", choices=sorted(INPUT_SETS),
                         default="B-yeast",
                         help="preset workload to profile")
    profile.add_argument("--scale", type=float, default=0.1)
    profile.add_argument("--threads", type=int, default=1,
                         help="mapping threads (1 keeps the hot path on one "
                              "stack, the easiest profile to read)")
    profile.add_argument("--batch-size", type=int, default=64)
    profile.add_argument("--cache-capacity", type=int, default=256)
    profile.add_argument(
        "--scheduler", choices=("dynamic", "static", "work_stealing"),
        default="dynamic",
    )
    profile.add_argument("--interval", type=float, default=0.002,
                         help="mean seconds between stack samples (jittered "
                              "±25%% to dodge lockstep bias)")
    profile.add_argument("--seed", type=int, default=0,
                         help="jitter seed (same seed => same sample "
                              "schedule)")
    profile.add_argument("--out", default="profile.collapsed",
                         help="collapsed-stack output path "
                              "('stack;frames count' lines)")
    profile.add_argument("--top", type=int, default=10,
                         help="print the N hottest leaf functions")

    chaos = commands.add_parser(
        "chaos",
        help="run the proxy under a seeded fault plan; assert exactly-once",
    )
    chaos.add_argument("--seed", type=int, default=0,
                       help="fault-plan seed (same seed => same report)")
    chaos.add_argument("--input-set", choices=sorted(INPUT_SETS),
                       default="B-yeast")
    chaos.add_argument("--scale", type=float, default=0.05)
    chaos.add_argument("--threads", type=int, default=3)
    chaos.add_argument("--batch-size", type=int, default=16)
    chaos.add_argument(
        "--scheduler", choices=("dynamic", "static", "work_stealing"),
        default="dynamic",
    )
    chaos.add_argument(
        "--policy", choices=("fail_fast", "quarantine", "retry"),
        default="retry",
        help="failure policy the scheduler runs under (default: retry)",
    )
    chaos.add_argument("--max-attempts", type=int, default=3)
    chaos.add_argument("--raise-rate", type=float, default=0.2,
                       help="per-batch probability of an injected exception")
    chaos.add_argument("--delay-rate", type=float, default=0.1,
                       help="per-batch probability of an injected stall")
    chaos.add_argument("--storm-rate", type=float, default=0.1,
                       help="per-batch probability of a cache eviction storm")
    chaos.add_argument("--sticky-rate", type=float, default=0.5,
                       help="probability an injected exception survives retries")
    chaos.add_argument("--max-delay", type=float, default=0.002,
                       help="injected stall ceiling in seconds")
    chaos.add_argument(
        "--corrupt", action="store_true",
        help="also corrupt the serialized seed stream and load tolerantly",
    )
    chaos.add_argument("--corrupt-rate", type=float, default=0.0005,
                       help="per-byte flip probability with --corrupt")
    chaos.add_argument("--json", help="write the deterministic report here")
    chaos.add_argument(
        "--serve", action="store_true",
        help="soak mode: run faults under live service traffic and assert "
             "per-connection exactly-once completeness",
    )
    chaos.add_argument("--tenants", type=int, default=2,
                       help="with --serve: concurrent tenant connections")
    chaos.add_argument("--requests", type=int, default=6,
                       help="with --serve: requests streamed per tenant")
    chaos.add_argument("--batch-reads", type=int, default=4,
                       help="with --serve: reads per small request")
    chaos.add_argument(
        "--crash", action="store_true",
        help="with --serve: the crash-recovery gate — kill supervised "
             "workers and the server itself mid-load, restart over the "
             "request journal, and assert exactly-once completeness plus "
             "byte-identical results against a fault-free run",
    )
    chaos.add_argument("--journal",
                       help="with --crash: journal path shared by both "
                            "service incarnations (default: a temp file)")
    chaos.add_argument("--workers", type=int, default=2,
                       help="with --crash: supervised worker subprocesses")

    tune = commands.add_parser(
        "tune", help="exhaustive parameter sweep (machine model or measured)"
    )
    tune.add_argument("--input-set", choices=sorted(INPUT_SETS), required=True)
    tune.add_argument("--profile-scale", type=float, default=0.1)
    tune.add_argument(
        "--platform", choices=sorted(PLATFORMS) + ["all"], default="all"
    )
    tune.add_argument("--subsample", type=float, default=0.1)
    tune.add_argument("--csv", help="write the full grid to this CSV")
    tune.add_argument(
        "--measured", action="store_true",
        help="run the real proxy over the grid instead of the machine model",
    )
    tune.add_argument(
        "--smoke", action="store_true",
        help="with --measured: the 2x2x2 mini-sweep CI runs",
    )
    tune.add_argument(
        "--schedulers", help="with --measured: comma-separated scheduler list"
    )
    tune.add_argument(
        "--batch-sizes", help="with --measured: comma-separated batch sizes"
    )
    tune.add_argument(
        "--capacities", help="with --measured: comma-separated cache capacities"
    )
    tune.add_argument(
        "--threads", type=int, default=None,
        help="with --measured: worker threads per grid point",
    )
    tune.add_argument(
        "--repeats", type=int, default=None,
        help="with --measured: best-of-N repeats per grid point",
    )
    tune.add_argument(
        "--workers",
        help="with --measured: comma-separated process-pool worker counts "
             "(0 = thread schedulers; refused above the host's core count)",
    )
    tune.add_argument(
        "--allow-oversubscribe", action="store_true",
        help="with --measured: allow --workers counts beyond the host's "
             "cores (correctness testing only; the curve is meaningless)",
    )
    tune.add_argument(
        "--json", help="with --measured: write the repro.tune/v1 report here"
    )
    tune.add_argument(
        "--bench-out",
        help="with --measured: also record the sweep as a BENCH_*.json "
             "in this directory (feeds the bench trajectory)",
    )

    scale = commands.add_parser(
        "scale", help="predict strong scaling on the paper's machines"
    )
    scale.add_argument("--input-set", choices=sorted(INPUT_SETS), required=True)
    scale.add_argument("--profile-scale", type=float, default=0.1)
    scale.add_argument(
        "--platform", choices=sorted(PLATFORMS) + ["all"], default="all"
    )
    scale.add_argument(
        "--measured-bench",
        help="validate the worker-scaling shape of this BENCH_*.json "
             "(from 'repro bench --parallel') against the host-shaped "
             "machine model; exits 1 on shape mismatch",
    )
    scale.add_argument(
        "--tolerance", type=float, default=0.5,
        help="with --measured-bench: allowed relative speedup deviation",
    )
    scale.add_argument(
        "--json", help="with --measured-bench: write the validation here"
    )

    lint = commands.add_parser(
        "lint", help="run the repro.qa static analysis rules"
    )
    lint.add_argument(
        "paths", nargs="*", default=None,
        help="files or directories to lint (default: src/repro tests)",
    )
    lint.add_argument(
        "--rules", help="comma-separated rule ids to run (default: all)"
    )
    lint.add_argument(
        "--baseline", default=os.path.join("qa", "lint_baseline.json"),
        help="baseline file for accepted pre-existing findings",
    )
    lint.add_argument(
        "--no-baseline", action="store_true",
        help="ignore the baseline file entirely (report every finding)",
    )
    lint.add_argument(
        "--update-baseline", action="store_true",
        help="accept the current findings as the new baseline",
    )
    lint.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog and exit",
    )

    races = commands.add_parser(
        "races", help="run the lockset race-detector audits"
    )
    races.add_argument(
        "--audit", action="append", choices=sorted(AUDIT_NAMES),
        help="audit(s) to run (default: all)",
    )
    races.add_argument(
        "--demo-racy", action="store_true",
        help="run the deliberately racy fixture instead of the audits "
        "(exit 0 when the race IS detected — the detector self-test)",
    )

    serve = commands.add_parser(
        "serve",
        help="run the mapping service: a socket front-end with admission "
             "control, SLO tracking, and a dead-letter queue",
    )
    serve.add_argument("--input-set", choices=sorted(INPUT_SETS),
                       default="A-human",
                       help="preset the service maps against (clients must "
                            "generate from the same preset and scale)")
    serve.add_argument("--scale", type=float, default=0.1)
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8765,
                       help="listen port (0 picks a free port; see "
                            "--port-file)")
    serve.add_argument("--port-file",
                       help="write '<host> <port>' here once bound (the "
                            "handshake scripts use with --port 0)")
    serve.add_argument("--threads", type=int, default=2,
                       help="mapping worker threads inside the proxy")
    serve.add_argument("--batch-size", type=int, default=64,
                       help="proxy scheduler batch size")
    serve.add_argument("--max-queue-depth", type=int, default=64,
                       help="request queue ceiling; submissions past it are "
                            "rejected with reason queue_full")
    serve.add_argument("--quota-capacity", type=float, default=10_000.0,
                       help="per-tenant token-bucket burst budget (reads)")
    serve.add_argument("--quota-refill", type=float, default=5_000.0,
                       help="per-tenant sustained quota (reads/second)")
    serve.add_argument("--request-timeout", type=float, default=5.0,
                       help="watchdog soft deadline; a request stalled past "
                            "it is quarantined to the dead-letter queue")
    serve.add_argument("--slo-interval", type=float, default=10.0,
                       help="seconds between printed SLO reports (0 "
                            "disables the periodic report)")
    serve.add_argument("--dlq-spool",
                       help="append dead letters to this JSONL spool")
    serve.add_argument("--journal",
                       help="write-ahead request journal path: admitted "
                            "submissions are durable before they are "
                            "worked on, and a restart recovers them")
    serve.add_argument("--no-recover", action="store_true",
                       help="with --journal: skip replaying an existing "
                            "journal on start (append-only from here)")
    serve.add_argument("--workers", type=int, default=0,
                       help="map on this many supervised worker "
                            "subprocesses (crash-only: heartbeats, "
                            "restart backoff, circuit breakers) instead "
                            "of in-process threads")
    serve.add_argument("--shm", action="store_true",
                       help="with --workers: publish the graph state once "
                            "as a shared-memory segment and have worker "
                            "children attach it zero-copy instead of "
                            "re-materializing the pangenome per child")
    serve.add_argument("--trace-out",
                       help="write serve.request spans here (JSONL) on exit")
    serve.add_argument("--profile-out",
                       help="run the sampling profiler for the service's "
                            "lifetime; write collapsed stacks here on exit")

    submit = commands.add_parser(
        "submit",
        help="stream read batches at a running mapping service and "
             "collect every verdict",
    )
    submit.add_argument("--host", default="127.0.0.1")
    submit.add_argument("--port", type=int,
                        help="service port (or use --port-file)")
    submit.add_argument("--port-file",
                        help="read the service address written by "
                             "repro serve --port-file")
    submit.add_argument("--tenant", default="default",
                        help="tenant name for quota accounting")
    submit.add_argument("--input-set", choices=sorted(INPUT_SETS),
                        default="A-human",
                        help="preset to generate reads from (must match "
                             "the server's)")
    submit.add_argument("--scale", type=float, default=0.1)
    submit.add_argument("--requests", type=int, default=8,
                        help="number of submissions to stream")
    submit.add_argument("--batch-reads", type=int, default=4,
                        help="reads per submission")
    submit.add_argument("--process", choices=sorted(TRAFFIC_PROCESSES),
                        default="poisson",
                        help="open-loop arrival process for the schedule")
    submit.add_argument("--rate", type=float, default=50.0,
                        help="average arrival rate (requests/second)")
    submit.add_argument("--burst-size", type=int, default=8,
                        help="arrivals per burst with --process burst")
    submit.add_argument("--seed", type=int, default=0,
                        help="traffic schedule seed (same seed => same "
                             "schedule)")
    submit.add_argument("--max-retries", type=int, default=8,
                        help="retries per request after REJECT verdicts")
    submit.add_argument("--deadline", type=float,
                        help="per-request deadline budget in seconds "
                             "(protocol v3): the server rejects an "
                             "exhausted budget with reason 'expired' and "
                             "never dispatches past it")
    submit.add_argument("--stats", action="store_true",
                        help="also fetch and print the server's SLO report")
    submit.add_argument("--slo", action="store_true",
                        help="fetch the SLO report and print it in human "
                             "form, naming the worst-latency exemplar trace "
                             "ids per tenant")
    submit.add_argument("--metrics-out",
                        help="fetch the Prometheus metrics dump to this file")
    submit.add_argument("--shutdown", action="store_true",
                        help="send SHUTDOWN after the stream (or alone "
                             "with --requests 0)")
    submit.add_argument("--json", help="write the client report here")

    dlq = commands.add_parser(
        "dlq",
        help="inspect, drain, or replay the service's dead-letter queue",
    )
    dlq_action = dlq.add_mutually_exclusive_group(required=True)
    dlq_action.add_argument("--inspect", action="store_true",
                            help="print the entries without removing them")
    dlq_action.add_argument("--drain", action="store_true",
                            help="remove and print every entry")
    dlq_action.add_argument("--replay", action="store_true",
                            help="drain the queue (or read --spool) and "
                                 "resubmit each entry through the normal "
                                 "admission path")
    dlq.add_argument("--host", default="127.0.0.1")
    dlq.add_argument("--port", type=int,
                     help="service port (or use --port-file)")
    dlq.add_argument("--port-file",
                     help="read the service address written by "
                          "repro serve --port-file")
    dlq.add_argument("--spool",
                     help="with --replay: read dead letters from this "
                          "JSONL spool instead of draining the server")
    dlq.add_argument("--json", help="write the entries / replay report here")

    top = commands.add_parser(
        "top",
        help="live service view: per-tenant throughput, queue depth, "
             "DLQ size, rolling latency percentiles",
    )
    top.add_argument("--host", default="127.0.0.1")
    top.add_argument("--port", type=int,
                     help="service port (or use --port-file)")
    top.add_argument("--port-file",
                     help="read the service address written by "
                          "repro serve --port-file")
    top.add_argument("--interval", type=float, default=2.0,
                     help="seconds between refreshes")
    top.add_argument("--once", action="store_true",
                     help="print one snapshot and exit (scripting mode)")

    docs = commands.add_parser(
        "docs",
        help="check the docs tree covers every CLI subcommand and flag "
             "(the docs-drift gate)",
    )
    docs.add_argument("--docs-dir", default="docs",
                      help="directory of markdown docs to scan")
    docs.add_argument("--readme", default="README.md",
                      help="README path included in the corpus")
    docs.add_argument("--list", action="store_true",
                      help="print the full CLI surface being checked and "
                           "exit")
    return parser


def _materialize_with_mapper(input_set: str, scale: float):
    bundle = materialize(INPUT_SETS[input_set], scale=scale)
    spec = bundle.spec
    mapper = GiraffeMapper(
        bundle.pangenome.gbz,
        GiraffeOptions(
            minimizer_k=spec.minimizer_k, minimizer_w=spec.minimizer_w
        ),
    )
    return bundle, mapper


def _cmd_generate(args) -> int:
    os.makedirs(args.out_dir, exist_ok=True)
    bundle, mapper = _materialize_with_mapper(args.input_set, args.scale)
    print(f"generated {bundle.describe()}")
    from repro.graph.gfa import write_gfa_file
    from repro.workloads.fastq import write_fastq_file

    gbz_path = os.path.join(args.out_dir, f"{args.input_set}.gbz")
    gfa_path = os.path.join(args.out_dir, f"{args.input_set}.gfa")
    fastq_path = os.path.join(args.out_dir, f"{args.input_set}.fastq")
    seeds_path = os.path.join(args.out_dir, f"{args.input_set}.seeds.bin")
    expected_path = os.path.join(args.out_dir, f"{args.input_set}.expected.ext")
    save_gbz_file(bundle.pangenome.gbz, gbz_path)
    write_gfa_file(bundle.pangenome.graph, gfa_path)
    write_fastq_file(bundle.reads, fastq_path)
    records = mapper.capture_read_records(bundle.reads)
    save_seed_file_path(records, seeds_path)
    parent = mapper.map_all(bundle.reads)
    save_extensions_path(parent.critical_extensions, expected_path)
    for path in (gbz_path, gfa_path, fastq_path, seeds_path, expected_path):
        print(f"wrote {path} ({os.path.getsize(path)} bytes)")
    print(f"minimizer k for --seed-span: {bundle.spec.minimizer_k}")
    return 0


def _cmd_map(args) -> int:
    options = ProxyOptions(
        threads=args.threads,
        batch_size=args.batch_size,
        cache_capacity=args.cache_capacity,
        scheduler=args.scheduler,
        instrument=args.instrument,
        workers=args.workers,
        shards=args.shards,
    )
    proxy = MiniGiraffe.from_files(args.gbz, options, seed_span=args.seed_span)
    records = load_seed_file_path(args.seeds)
    start = time.perf_counter()
    try:
        result = proxy.map_reads(records)
    finally:
        proxy.close()
    elapsed = time.perf_counter() - start
    print(f"mapped {result.mapped_reads}/{len(records)} reads "
          f"in {result.makespan:.3f}s (total {elapsed:.3f}s)")
    print(f"cache: hit rate {result.cache_stats['hit_rate']:.2%}, "
          f"{int(result.cache_stats['rehashes'])} rehashes")
    if args.instrument and result.timer is not None:
        for region, share in sorted(
            result.timer.percentages().items(), key=lambda kv: -kv[1]
        ):
            print(f"  {region:28s} {share:5.1f}%")
    if args.output:
        save_extensions_path(result.extensions, args.output)
        print(f"wrote {args.output}")
    if args.gam:
        alignments = [
            alignments_from_extensions(name, exts)
            for name, exts in sorted(result.extensions.items())
        ]
        count = write_gam_file(alignments, args.gam)
        print(f"wrote {count} GAM records to {args.gam}")
    return 0


def _write_attribution(report, args) -> None:
    """Print an attribution report; honor ``trace --json``."""
    print(report.render())
    if args.json:
        with open(args.json, "w", encoding="utf-8") as out:
            json.dump(report.to_dict(), out, indent=2, sort_keys=True)
            out.write("\n")
        print(f"\nwrote {args.json}")


def _cmd_trace_serve(args) -> int:
    """``repro trace --serve``: an in-process served workload traced
    end-to-end (client, admission, queue, scheduler, kernels) on one
    shared tracer, then attributed per request."""
    import threading

    from repro.analysis.attribution import attribute
    from repro.obs.trace import Tracer, use_tracer
    from repro.serve import MappingService, ServiceConfig, StreamingClient
    from repro.util.rng import derive_seed
    from repro.workloads.traffic import TrafficPattern, split_batches

    bundle, parent = _materialize_with_mapper(args.input_set, args.scale)
    records = parent.capture_read_records(bundle.reads)
    print(f"traced service input: {bundle.describe()}")
    proxy = MiniGiraffe(
        bundle.pangenome.gbz,
        ProxyOptions(
            threads=args.threads,
            batch_size=args.batch_size,
            cache_capacity=args.cache_capacity,
            scheduler=args.scheduler,
        ),
        seed_span=bundle.spec.minimizer_k,
        distance_index=parent.distance_index,
    )
    batches = split_batches(records, args.batch_reads)
    while len(batches) < args.requests:
        batches = batches + batches
    batches = batches[:args.requests]

    tracer = Tracer(capacity=args.ring_capacity)
    service = MappingService(proxy, ServiceConfig(port=0), tracer=tracer)
    handle = service.start()
    threads = []
    try:
        # The shared tracer must stay installed while client threads and
        # the server's mapping worker are live: client.request spans go
        # through the process-wide tracer, server spans through the
        # explicit one — same ring, one tree per request.
        with use_tracer(tracer):
            pattern = TrafficPattern(process="poisson", rate=200.0)
            for index in range(args.tenants):
                tenant = f"tenant-{index}"

                def _stream(tenant=tenant, index=index):
                    with StreamingClient(handle.host, handle.port,
                                         tenant) as client:
                        client.stream(
                            batches,
                            gaps=pattern.gaps(
                                len(batches), derive_seed(0, "trace", tenant)
                            ),
                            request_prefix=tenant,
                        )

                thread = threading.Thread(
                    target=_stream, name=f"trace-{tenant}"
                )
                thread.start()
                threads.append(thread)
            for thread in threads:
                thread.join()
    finally:
        handle.stop()
        handle.join(timeout=10.0)

    spans = tracer.spans()
    count = tracer.export_jsonl(args.out)
    print(f"wrote {count} spans to {args.out}"
          + (f" ({tracer.ring.dropped} dropped)"
             if tracer.ring.dropped else ""))
    print()
    report = attribute(spans, dropped_spans=tracer.ring.dropped)
    _write_attribution(report, args)
    if report.completeness < 1.0:
        print(f"\ntrace-join completeness below 100% "
              f"({report.joined_traces}/{report.result_traces})",
              file=sys.stderr)
        return 1
    return 0


def _cmd_trace(args) -> int:
    from repro.analysis.tracereport import render_trace_report
    from repro.obs import MetricsRegistry, Tracer

    if args.gbz and not args.seeds:
        print("error: --gbz requires --seeds", file=sys.stderr)
        return 2
    if args.spans and not args.attribute:
        print("error: --spans requires --attribute", file=sys.stderr)
        return 2
    if args.attribute and not (args.spans or args.serve):
        print("error: --attribute needs --spans or --serve",
              file=sys.stderr)
        return 2
    if args.serve:
        if not args.input_set:
            print("error: --serve needs --input-set", file=sys.stderr)
            return 2
        return _cmd_trace_serve(args)
    if args.spans:
        from repro.analysis.attribution import attribute
        from repro.obs.trace import load_spans_jsonl

        _write_attribution(attribute(load_spans_jsonl(args.spans)), args)
        return 0
    options = ProxyOptions(
        threads=args.threads,
        batch_size=args.batch_size,
        cache_capacity=args.cache_capacity,
        scheduler=args.scheduler,
    )
    if args.input_set:
        bundle, mapper = _materialize_with_mapper(args.input_set, args.scale)
        records = mapper.capture_read_records(bundle.reads)
        proxy = MiniGiraffe(
            bundle.pangenome.gbz,
            options,
            seed_span=bundle.spec.minimizer_k,
            distance_index=mapper.distance_index,
        )
        print(f"traced input: {bundle.describe()}")
    else:
        proxy = MiniGiraffe.from_files(
            args.gbz, options, seed_span=args.seed_span
        )
        records = load_seed_file_path(args.seeds)
    tracer = Tracer(capacity=args.ring_capacity)
    registry = MetricsRegistry()
    result = proxy.map_reads(records, tracer=tracer, metrics=registry)
    span_count = tracer.export_jsonl(args.out)
    print(f"mapped {result.mapped_reads}/{len(records)} reads "
          f"in {result.makespan:.3f}s")
    print(f"wrote {span_count} spans to {args.out}"
          + (f" ({tracer.ring.dropped} dropped)" if tracer.ring.dropped else ""))
    if args.metrics_out:
        registry.write(args.metrics_out)
        print(f"wrote metrics dump to {args.metrics_out}")
    print()
    print(render_trace_report(tracer.spans(), registry,
                              dropped_spans=tracer.ring.dropped))
    return 0


def _cmd_profile(args) -> int:
    from repro.obs.profile import SamplingProfiler

    bundle, mapper = _materialize_with_mapper(args.input_set, args.scale)
    records = mapper.capture_read_records(bundle.reads)
    proxy = MiniGiraffe(
        bundle.pangenome.gbz,
        ProxyOptions(
            threads=args.threads,
            batch_size=args.batch_size,
            cache_capacity=args.cache_capacity,
            scheduler=args.scheduler,
        ),
        seed_span=bundle.spec.minimizer_k,
        distance_index=mapper.distance_index,
    )
    print(f"profiling input: {bundle.describe()}")
    profiler = SamplingProfiler(interval=args.interval, seed=args.seed)
    with profiler:
        result = proxy.map_reads(records)
    lines = profiler.write_collapsed(args.out)
    print(f"mapped {result.mapped_reads}/{len(records)} reads "
          f"in {result.makespan:.3f}s")
    print(f"wrote {lines} collapsed stack(s) to {args.out} "
          f"({profiler.samples} samples)")
    print()
    print(profiler.render_top(args.top))
    return 0


def _cmd_top(args) -> int:
    from repro.serve import StreamingClient

    host, port = _resolve_address(args)
    try:
        while True:
            with StreamingClient(host, port, "top-admin") as client:
                stats = client.stats()
            print(_render_top(stats))
            if args.once:
                return 0
            time.sleep(max(0.1, args.interval))
            print()
    except KeyboardInterrupt:
        return 0


def _render_top(stats) -> str:
    """One ``repro top`` frame from a STATS payload."""
    lines = [
        f"queue_depth={stats.get('queue_depth', 0)} "
        f"dlq={stats.get('dead_letter_queue', 0)} "
        f"accepted={stats.get('accepted', 0)} "
        f"rejected={stats.get('rejected', 0)}",
        f"{'tenant':<12} {'done':>6} {'rej':>5} {'dlq':>5} "
        f"{'reads':>8} {'p50':>9} {'p99':>9}",
    ]
    percentiles = stats.get("latency_percentiles", {})
    per_tenant = stats.get("per_tenant", {})
    tenants = sorted(set(per_tenant) | set(percentiles) - {"*"})
    for tenant in tenants:
        counts = per_tenant.get(tenant, {})
        pcts = percentiles.get(tenant, {})

        def _ms(name):
            value = pcts.get(name)
            return f"{value * 1000.0:.2f}ms" if value is not None else "-"

        lines.append(
            f"{tenant:<12} {counts.get('completed', 0):>6} "
            f"{counts.get('rejected', 0):>5} "
            f"{counts.get('dead_lettered', 0):>5} "
            f"{counts.get('reads_mapped', 0):>8} "
            f"{_ms('p50'):>9} {_ms('p99'):>9}"
        )
    workers = stats.get("workers") or {}
    if workers.get("workers") is not None:
        cells = []
        for worker in workers["workers"]:
            busy = "*" if worker.get("busy") else ""
            cells.append(
                f"{worker.get('index')}={worker.get('state')}"
                f"/{worker.get('breaker')}"
                f"(r{worker.get('restarts', 0)}){busy}"
            )
        lines.append(
            f"workers: {' '.join(cells)} "
            f"restarts_total={workers.get('restarts_total', 0)}"
        )
    elif workers:
        lines.append(f"workers: mode=threads x{workers.get('threads', 1)}")
    journal = stats.get("journal")
    if journal:
        lines.append(
            f"journal: appends={journal.get('appends', 0)} "
            f"fsyncs={journal.get('fsyncs', 0)} "
            f"lag={journal.get('lag', 0)} "
            f"recovered={journal.get('recovered_completed', 0)}+"
            f"{journal.get('recovered_incomplete', 0)} "
            f"truncated={journal.get('truncated_records', 0)}"
        )
    return "\n".join(lines)


def _cmd_chaos(args) -> int:
    if args.serve:
        return _cmd_chaos_serve(args)
    import io as io_module

    from repro.core.io import load_seed_file_tolerant, save_seed_file
    from repro.resilience import FailurePolicy, FaultPlan, InjectedFault

    plan = FaultPlan(
        seed=args.seed,
        raise_rate=args.raise_rate,
        delay_rate=args.delay_rate,
        storm_rate=args.storm_rate,
        sticky_rate=args.sticky_rate,
        max_delay=args.max_delay,
        corrupt_rate=args.corrupt_rate,
    )
    policy = FailurePolicy(
        mode=args.policy, max_attempts=args.max_attempts, seed=args.seed
    )
    bundle, mapper = _materialize_with_mapper(args.input_set, args.scale)
    records = mapper.capture_read_records(bundle.reads)
    print(f"chaos input: {bundle.describe()}")

    io_quarantine = None
    if args.corrupt:
        buffer = io_module.BytesIO()
        save_seed_file(records, buffer, framed=True)
        corrupted = plan.corrupt(buffer.getvalue())
        records, quarantine = load_seed_file_tolerant(
            io_module.BytesIO(corrupted)
        )
        io_quarantine = quarantine.to_dict()
        print(f"corrupt stream: salvaged {quarantine.loaded}/"
              f"{quarantine.expected} records "
              f"({len(quarantine.entries)} quarantined)")

    options = ProxyOptions(
        threads=args.threads,
        batch_size=args.batch_size,
        scheduler=args.scheduler,
    )
    proxy = MiniGiraffe(
        bundle.pangenome.gbz,
        options,
        seed_span=bundle.spec.minimizer_k,
        distance_index=mapper.distance_index,
    )
    names = [record.name for record in records]
    propagated = None
    result = None
    with plan.install() as injector:
        try:
            result = proxy.map_reads(records, resilience=policy)
        except InjectedFault as exc:
            # Only the injected fault class is expected to escape, and
            # only under fail-fast; anything else is a real bug and
            # propagates to the operator unchanged.
            if args.policy != "fail_fast":
                raise
            propagated = type(exc).__name__

    report = {
        "schema": 1,
        "seed": args.seed,
        "input_set": args.input_set,
        "scale": args.scale,
        "threads": args.threads,
        "batch_size": args.batch_size,
        "scheduler": args.scheduler,
        "policy": args.policy,
        "max_attempts": args.max_attempts,
        "plan": {
            "raise_rate": args.raise_rate,
            "delay_rate": args.delay_rate,
            "storm_rate": args.storm_rate,
            "sticky_rate": args.sticky_rate,
            "max_delay": args.max_delay,
            "corrupt_rate": args.corrupt_rate if args.corrupt else 0.0,
        },
        "io_quarantine": io_quarantine,
    }
    if propagated is not None:
        # Fail-fast runs are gated on propagation, not on the report:
        # which batches ran before the fatal flag tripped is timing
        # noise, so injection counts are deliberately omitted.
        report["propagated"] = propagated
        exactly_once = True
        print(f"fail-fast propagated {propagated} to the caller (expected)")
    else:
        completeness = result.completeness
        processed = set(result.extensions)
        failed = set(completeness.failed_reads)
        exactly_once = (
            processed.isdisjoint(failed)
            and processed | failed == set(names)
            and len(names) == len(set(names))
            and completeness.duplicates == 0
        )
        report["injected"] = injector.counts()
        report["run"] = completeness.to_dict()
        print(f"processed {completeness.processed_reads}/"
              f"{completeness.total_reads} reads, "
              f"{len(failed)} quarantined, "
              f"{completeness.retries} retries, "
              f"{report['injected']['raises']} injected raises")
    report["exactly_once"] = exactly_once
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.json}")
    print("exactly-once invariant: " + ("OK" if exactly_once else "VIOLATED"))
    return 0 if exactly_once else 1


def _cmd_validate(args) -> int:
    if args.expected or args.actual:
        if not (args.expected and args.actual):
            print("error: file mode needs both --expected and --actual",
                  file=sys.stderr)
            return 2
        expected = load_extensions_path(args.expected)
        actual = load_extensions_path(args.actual)
        report = compare_outputs(expected, actual)
        print(report.summary())
        return 0 if report.perfect else 1
    if not (args.input_set or args.smoke):
        print("error: pass --expected/--actual (file mode) or "
              "--input-set/--smoke (fidelity mode)", file=sys.stderr)
        return 2

    from repro.analysis.benchreport import render_validation_report
    from repro.obs import validate as obs_validate

    input_set = args.input_set or "A-human"
    scale = args.scale
    time_threshold = args.time_threshold
    if args.smoke:
        # Smoke workloads are small; the proxy's fixed setup cost and
        # scheduler wake-up noise can exceed the paper's 8.7% band, so
        # the time gate relaxes unless explicitly pinned.
        if time_threshold is None:
            time_threshold = obs_validate.SMOKE_TIME_THRESHOLD
    thresholds = obs_validate.ValidationThresholds(
        cosine=args.cosine_threshold
        if args.cosine_threshold is not None
        else obs_validate.DEFAULT_COSINE_THRESHOLD,
        hw_cosine=args.cosine_threshold
        if args.cosine_threshold is not None
        else obs_validate.DEFAULT_COSINE_THRESHOLD,
        time=time_threshold
        if time_threshold is not None
        else obs_validate.DEFAULT_TIME_THRESHOLD,
    )
    result = obs_validate.run_validation(
        input_set=input_set,
        scale=scale,
        threads=args.threads,
        batch_size=args.batch_size,
        cache_capacity=args.cache_capacity,
        scheduler=args.scheduler,
        repeats=args.repeats,
        platform=args.platform,
        thresholds=thresholds,
    )
    print(render_validation_report(result))
    if args.json:
        result.write_json(args.json)
        print(f"wrote {args.json}")
    return 0 if result.passed else 1


def _cmd_bench(args) -> int:
    from repro.analysis.benchreport import render_bench_report
    from repro.obs import bench as obs_bench

    if args.parallel:
        suite_name, configs = "parallel", obs_bench.parallel_suite()
    elif args.smoke:
        suite_name, configs = "smoke", obs_bench.smoke_suite()
    else:
        suite_name, configs = "full", obs_bench.default_suite()
    print(f"bench suite '{suite_name}': {len(configs)} config(s)")

    def progress(entry):
        print(f"  {entry['key']}: {entry['wall_time']:.4f}s "
              f"({entry['mapped_reads']}/{entry['read_count']} mapped)")

    report = obs_bench.run_suite(
        configs, suite=suite_name, platform=args.platform, progress=progress
    )
    path = obs_bench.write_report(report, args.out_dir)
    print(f"wrote {path}")
    if args.update_baseline:
        os.makedirs(os.path.dirname(args.baseline) or ".", exist_ok=True)
        with open(args.baseline, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"updated baseline {args.baseline}")
        print()
        print(render_bench_report(report))
        return 0
    comparison = None
    if os.path.exists(args.baseline):
        baseline = obs_bench.load_report(args.baseline)
        comparison = obs_bench.compare_to_baseline(
            report, baseline,
            time_threshold=args.threshold,
            ops_threshold=args.ops_threshold,
        )
    else:
        print(f"no baseline at {args.baseline}; skipping regression gate "
              "(create one with --update-baseline)")
    print()
    print(render_bench_report(report, comparison))
    return 1 if comparison is not None and comparison.has_regressions else 0


def _platforms_for(name: str):
    if name == "all":
        return PLATFORMS
    return {name: PLATFORMS[name]}


def _profile_for(input_set: str, profile_scale: float):
    bundle, mapper = _materialize_with_mapper(input_set, profile_scale)
    records = mapper.capture_read_records(bundle.reads)
    return profile_workload(
        bundle.pangenome.gbz, records, input_set=input_set,
        seed_span=bundle.spec.minimizer_k,
        distance_index=mapper.distance_index,
    )


def _int_list(raw: str) -> List[int]:
    """Parse a comma-separated integer list CLI flag."""
    return [int(part) for part in raw.split(",") if part.strip()]


def _cmd_tune_measured(args) -> int:
    """The measured sweep behind ``repro tune --measured``."""
    from repro.analysis import render_tune_report
    from repro.obs.bench import write_report
    from repro.tuning import (
        SweepGrid,
        run_sweep,
        smoke_grid,
        summarize_sweep,
        sweep_to_bench_report,
    )

    if args.smoke:
        grid = smoke_grid()
    else:
        grid = SweepGrid()
    overrides = {}
    if args.schedulers:
        overrides["schedulers"] = tuple(
            s.strip() for s in args.schedulers.split(",") if s.strip()
        )
    if args.batch_sizes:
        overrides["batch_sizes"] = tuple(_int_list(args.batch_sizes))
    if args.capacities:
        overrides["capacities"] = tuple(_int_list(args.capacities))
    if args.threads is not None:
        overrides["threads"] = args.threads
    if args.repeats is not None:
        overrides["repeats"] = args.repeats
    if args.workers:
        overrides["workers"] = tuple(_int_list(args.workers))
    if overrides:
        import dataclasses

        grid = dataclasses.replace(grid, **overrides)
    try:
        grid.check_host(allow_oversubscribe=args.allow_oversubscribe)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    def progress(entry):
        print(f"  {entry['key']}: {entry['wall_time']:.4f}s")

    print(f"measured sweep: {grid.size()} grid points + default "
          f"(input set {args.input_set}, scale {grid.scale})")
    report = run_sweep(
        args.input_set, grid=grid, progress=progress,
        allow_oversubscribe=args.allow_oversubscribe,
    )
    summary = summarize_sweep(report)
    print()
    print(render_tune_report(summary))
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.json}")
    if args.bench_out:
        path = write_report(sweep_to_bench_report(report), args.bench_out)
        print(f"wrote {path}")
    return 0


def _cmd_tune(args) -> int:
    if args.measured:
        return _cmd_tune_measured(args)
    profile = _profile_for(args.input_set, args.profile_scale)
    store = ResultStore()
    for name, platform in _platforms_for(args.platform).items():
        search = GridSearch(
            ExecutionModel(profile, platform), subsample=args.subsample
        )
        try:
            results = search.run()
            default = search.default_result()
        except OutOfMemoryError as error:
            print(f"{name}: OUT OF MEMORY ({error})")
            continue
        store.add_results(results)
        store.add_default(default)
        best = search.best(results)
        print(f"{name}: best {best.makespan:.3f}s ({best.config.label()}) "
              f"default {default.makespan:.3f}s "
              f"speedup {default.makespan / best.makespan:.2f}x")
    if len(store):
        geomeans = store.geomean_speedup_by_input()
        print(f"geomean speedup: {geomeans[args.input_set]:.3f}x")
    if args.csv:
        store.write_csv(args.csv)
        print(f"wrote {args.csv}")
    return 0


def _cmd_scale_measured(args) -> int:
    """The shape gate behind ``repro scale --measured-bench``."""
    from repro.analysis.scaling import (
        measured_worker_curve,
        predicted_worker_curve,
        validate_scaling,
    )
    from repro.obs.bench import load_report
    from repro.sim.platform import host_platform_spec

    report = load_report(args.measured_bench)
    measured = measured_worker_curve(report)
    if not measured:
        print(f"error: {args.measured_bench} has no process-pool entries "
              f"(run 'repro bench --parallel')", file=sys.stderr)
        return 2
    profile = _profile_for(args.input_set, args.profile_scale)
    platform = host_platform_spec()
    predicted = predicted_worker_curve(
        profile, sorted(measured), platform=platform
    )
    validation = validate_scaling(
        measured, predicted, platform=platform, tolerance=args.tolerance
    )
    print(validation.render())
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(validation.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.json}")
    return 0 if validation.ok else 1


def _cmd_scale(args) -> int:
    if args.measured_bench:
        return _cmd_scale_measured(args)
    profile = _profile_for(args.input_set, args.profile_scale)
    for name, platform in _platforms_for(args.platform).items():
        model = ExecutionModel(profile, platform)
        try:
            base = model.makespan(TuningConfig(threads=1))
        except OutOfMemoryError as error:
            print(f"{name}: OUT OF MEMORY ({error})")
            continue
        parts = [f"{name}: t1={base:.1f}s"]
        for threads in platform.thread_sweep()[1:]:
            makespan = model.makespan(TuningConfig(threads=threads))
            parts.append(f"{threads}:{base / makespan:.1f}")
        print(" ".join(parts))
    return 0


def _cmd_lint(args) -> int:
    from repro.qa.lint import Baseline, lint_paths
    from repro.qa.rules import DEFAULT_RULES, all_rule_ids, rules_by_id

    if args.list_rules:
        for rule in DEFAULT_RULES:
            print(f"{rule.id:24s} [{rule.severity}] {rule.description}")
        print(f"{'unused-suppression':24s} [error] "
              "qa: ignore comment that silences nothing (engine built-in)")
        print(f"{'parse-error':24s} [error] "
              "file does not parse (engine built-in)")
        return 0

    paths = args.paths or ["src/repro", "tests"]
    known = all_rule_ids()
    if args.rules:
        selected_ids = [r.strip() for r in args.rules.split(",") if r.strip()]
        try:
            rules = rules_by_id(selected_ids)
        except KeyError as exc:
            print(f"error: {exc.args[0]}", file=sys.stderr)
            return 2
        active_ids = {rule.id for rule in rules} | {
            "unused-suppression", "parse-error"
        }
    else:
        rules = list(DEFAULT_RULES)
        active_ids = None  # all baseline entries are in scope

    result = lint_paths(paths, rules, known_rule_ids=known)

    if args.update_baseline:
        Baseline.from_findings(result.findings).save(args.baseline)
        print(f"baseline updated: {len(result.findings)} finding(s) "
              f"accepted into {args.baseline}")
        return 0

    if args.no_baseline:
        new, stale = result.findings, []
    else:
        try:
            baseline = Baseline.load(args.baseline)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        delta = baseline.delta(result.findings, rule_ids=active_ids)
        new, stale = delta.new, delta.stale

    for finding in new:
        print(finding.describe())
    for entry in stale:
        print(f"{entry.get('path')}: [stale-baseline] baseline entry for "
              f"[{entry.get('rule')}] {entry.get('message')!r} matches no "
              "current finding — the fix landed, remove the entry "
              "(repro lint --update-baseline)")
    baselined = len(result.findings) - len(new)
    print(f"linted {result.files} file(s): {len(new)} new finding(s), "
          f"{baselined} baselined, {len(stale)} stale baseline entr(ies), "
          f"{result.suppressed} suppressed inline")
    return 1 if (new or stale) else 0


def _cmd_races(args) -> int:
    from repro.qa.audits import AUDITS
    from repro.qa.races import run_racy_fixture

    if args.demo_racy:
        races = run_racy_fixture()
        for race in races:
            print(race.describe())
        if races:
            print("demo fixture: race detected (detector works)")
            return 0
        print("demo fixture: NO race detected — the detector is broken",
              file=sys.stderr)
        return 1

    names = args.audit or sorted(AUDITS)
    failures = 0
    for name in names:
        detector = AUDITS[name]()
        verdict = ("CLEAN" if not detector.races
                   else f"{len(detector.races)} race(s)")
        print(f"audit {name}: {verdict}")
        for race in detector.races:
            print(f"  {race.describe()}")
            failures += 1
    return 1 if failures else 0


def _resolve_address(args) -> tuple:
    """The service address from --port / --port-file (waits for the file)."""
    if args.port_file:
        deadline = time.monotonic() + 30.0
        while True:
            if os.path.exists(args.port_file):
                with open(args.port_file, "r", encoding="utf-8") as handle:
                    content = handle.read().split()
                if len(content) == 2:
                    return content[0], int(content[1])
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"no service address in {args.port_file} after 30s"
                )
            time.sleep(0.05)
    if args.port is None:
        raise SystemExit("error: pass --port or --port-file")
    return args.host, args.port


def _cmd_serve(args) -> int:
    from repro.obs.trace import Tracer
    from repro.resilience.supervisor import HandlerSpec
    from repro.serve import MappingService, ServiceConfig, TenantQuota

    worker_spec = None
    shared_state = None
    if args.shm and args.workers <= 0:
        raise SystemExit("error: --shm requires --workers > 0")
    if args.workers > 0 and args.shm:
        # Shared-memory mode: the parent materializes the pangenome
        # once, publishes it as a segment, and every worker child
        # attaches it zero-copy (restarts skip re-materialization).
        from repro.graph.shm import SharedMappingState

        proxy = None
        bundle, _ = _materialize_with_mapper(args.input_set, args.scale)
        shared_state = SharedMappingState.create(bundle.pangenome.gbz)
        worker_spec = HandlerSpec(
            "repro.serve.workers:build_shm_mapping_handler",
            {
                "segment": shared_state.name,
                "seed_span": bundle.spec.minimizer_k,
                "threads": args.threads,
                "batch_size": args.batch_size,
                "request_timeout": args.request_timeout,
            },
        )
    elif args.workers > 0:
        # Supervised mode: each spawn child materializes its own mapper
        # through this spec, so the parent never builds one at all.
        proxy = None
        worker_spec = HandlerSpec(
            "repro.serve.workers:build_mapping_handler",
            {
                "input_set": args.input_set,
                "scale": args.scale,
                "threads": args.threads,
                "batch_size": args.batch_size,
                "request_timeout": args.request_timeout,
            },
        )
    else:
        bundle, parent = _materialize_with_mapper(args.input_set, args.scale)
        proxy = MiniGiraffe(
            bundle.pangenome.gbz,
            ProxyOptions(threads=args.threads, batch_size=args.batch_size),
            seed_span=bundle.spec.minimizer_k,
            distance_index=parent.distance_index,
        )
    config = ServiceConfig(
        host=args.host,
        port=args.port,
        max_queue_depth=args.max_queue_depth,
        quota=TenantQuota(capacity=args.quota_capacity,
                          refill_rate=args.quota_refill),
        request_timeout=args.request_timeout,
        slo_interval=args.slo_interval,
        dlq_spool=args.dlq_spool,
        journal_path=args.journal,
        recover=not args.no_recover,
        workers=args.workers,
        worker_spec=worker_spec,
    )
    tracer = Tracer() if args.trace_out else None
    profiler = None
    if args.profile_out:
        from repro.obs.profile import SamplingProfiler

        profiler = SamplingProfiler().start()
    service = MappingService(proxy, config, tracer=tracer)
    handle = service.start()
    if service.recovery is not None:
        print("journal recovery: "
              + json.dumps(service.recovery.to_dict(), sort_keys=True))
    print(f"serving {args.input_set} (scale {args.scale}) "
          f"on {handle.host}:{handle.port}")
    if args.port_file:
        with open(args.port_file, "w", encoding="utf-8") as out:
            out.write(f"{handle.host} {handle.port}\n")
        print(f"wrote {args.port_file}")
    try:
        handle.join()
    except KeyboardInterrupt:
        handle.stop()
        handle.join(timeout=10.0)
    finally:
        if shared_state is not None:
            shared_state.unlink()
    if args.trace_out:
        count = tracer.export_jsonl(args.trace_out)
        print(f"wrote {count} span(s) to {args.trace_out}")
    if profiler is not None:
        profiler.stop()
        lines = profiler.write_collapsed(args.profile_out)
        print(f"wrote {lines} collapsed stack(s) to {args.profile_out} "
              f"({profiler.samples} samples)")
    print("service stopped")
    print(service.slo.report().render())
    return 0


def _cmd_submit(args) -> int:
    from repro.serve import StreamingClient
    from repro.workloads.traffic import TrafficPattern, split_batches

    host, port = _resolve_address(args)
    report = None
    with StreamingClient(host, port, args.tenant) as client:
        if args.requests > 0:
            bundle, parent = _materialize_with_mapper(
                args.input_set, args.scale
            )
            records = parent.capture_read_records(bundle.reads)
            batches = split_batches(records, args.batch_reads)
            while len(batches) < args.requests:
                batches = batches + batches
            batches = batches[:args.requests]
            pattern = TrafficPattern(process=args.process, rate=args.rate,
                                     burst_size=args.burst_size)
            gaps = pattern.gaps(len(batches), args.seed)
            report = client.stream(
                batches, gaps=gaps,
                request_prefix=f"{args.tenant}-{args.seed}",
                max_retries=args.max_retries,
                deadline=args.deadline,
            )
            summary = report.to_dict()
            print(json.dumps(summary, indent=2, sort_keys=True))
        if args.stats:
            print(json.dumps(client.stats(), indent=2, sort_keys=True))
        if args.slo:
            from repro.serve.slo import SLOReport

            payload = client.stats()
            fields = {
                name: payload[name]
                for name in SLOReport.__dataclass_fields__
                if name in payload
            }
            print(SLOReport(**fields).render())
        if args.metrics_out:
            with open(args.metrics_out, "w", encoding="utf-8") as out:
                out.write(client.metrics_text())
            print(f"wrote {args.metrics_out}")
        if args.shutdown:
            client.shutdown()
            print("server acknowledged shutdown")
    if args.json and report is not None:
        with open(args.json, "w", encoding="utf-8") as out:
            json.dump(report.to_dict(), out, indent=2, sort_keys=True)
            out.write("\n")
        print(f"wrote {args.json}")
    return 0 if report is None or report.complete else 1


def _cmd_dlq(args) -> int:
    from repro.serve import StreamingClient
    from repro.serve.queue import load_spool_tolerant

    if args.inspect or args.drain:
        host, port = _resolve_address(args)
        with StreamingClient(host, port, "dlq-admin") as client:
            entries = client.dlq_dump(inspect=args.inspect)
        print(json.dumps(entries, indent=2, sort_keys=True))
        if args.json:
            with open(args.json, "w", encoding="utf-8") as out:
                json.dump(entries, out, indent=2, sort_keys=True)
                out.write("\n")
            print(f"wrote {args.json}")
        return 0

    # --replay: collect dead letters, resubmit through admission.
    spool_skipped = 0
    if args.spool:
        # Tolerant load: a spool whose final line was cut short by a
        # crash mid-append must not block replaying the intact entries.
        spooled, spool_skipped = load_spool_tolerant(args.spool)
        entries = [entry.to_dict() for entry in spooled]
        if spool_skipped:
            print(f"spool: skipped {spool_skipped} corrupt line(s)")
    else:
        host, port = _resolve_address(args)
        with StreamingClient(host, port, "dlq-admin") as client:
            entries = client.dlq_dump(inspect=False)
    host, port = _resolve_address(args)
    replayable = [e for e in entries if e.get("records_b64")]
    skipped = len(entries) - len(replayable)
    by_tenant = {}
    for entry in replayable:
        by_tenant.setdefault(str(entry["tenant"]), []).append(entry)
    replay_report = {"entries": len(entries), "replayed": 0,
                     "skipped_no_payload": skipped,
                     "spool_lines_skipped": spool_skipped, "verdicts": {}}
    from repro.serve.protocol import unpack_records

    for tenant, tenant_entries in sorted(by_tenant.items()):
        with StreamingClient(host, port, tenant) as client:
            resubmit = {
                str(e["request_id"]):
                    unpack_records(str(e["records_b64"]))
                for e in tenant_entries
            }
            report = client.drain_pending(
                sorted(resubmit), resubmit=resubmit
            )
        for request_id in resubmit:
            if request_id in report.results:
                verdict = ("duplicate"
                           if report.results[request_id].get("duplicate")
                           else "completed")
            elif request_id in report.dead_lettered:
                verdict = "dead_lettered_again"
            else:
                verdict = "rejected"
            replay_report["verdicts"][f"{tenant}/{request_id}"] = verdict
            replay_report["replayed"] += 1
    print(json.dumps(replay_report, indent=2, sort_keys=True))
    if args.json:
        with open(args.json, "w", encoding="utf-8") as out:
            json.dump(replay_report, out, indent=2, sort_keys=True)
            out.write("\n")
        print(f"wrote {args.json}")
    return 0


def _cmd_docs(args) -> int:
    from repro.qa.docs import check_docs, cli_surface

    if args.list:
        for command, flags in sorted(cli_surface().items()):
            print(f"repro {command}: {' '.join(sorted(flags))}")
        return 0
    findings = check_docs(docs_dir=args.docs_dir, readme=args.readme)
    for finding in findings:
        print(finding)
    status = "OK" if not findings else f"{len(findings)} item(s) undocumented"
    print(f"docs-drift gate: {status}")
    return 1 if findings else 0


def _cmd_chaos_crash(args) -> int:
    """The ``repro chaos --serve --crash`` gate (see repro.serve.crash)."""
    import tempfile

    from repro.serve.crash import CrashGateError, run_crash_gate

    bundle, parent = _materialize_with_mapper(args.input_set, args.scale)
    records = parent.capture_read_records(bundle.reads)
    print(f"crash-gate input: {bundle.describe()}")
    journal_path = args.journal
    if journal_path is None:
        handle, journal_path = tempfile.mkstemp(suffix=".journal")
        os.close(handle)
        os.unlink(journal_path)  # the gate must start from no journal
    try:
        summary = run_crash_gate(
            records, journal_path,
            requests=args.requests,
            batch_reads=args.batch_reads,
            workers=args.workers,
            seed=args.seed,
        )
    except CrashGateError as error:
        print(f"crash gate FAILED: {error}", file=sys.stderr)
        return 1
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(summary, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.json}")
    recovery = summary["recovery"]
    print(f"crash gate: {summary['requests']} request(s), crashed after "
          f"{summary['pre_crash_verdicts']} verdict(s); recovered "
          f"{recovery['recovered_completed']} completed + "
          f"{recovery['recovered_incomplete']} incomplete, truncated "
          f"{recovery['truncated_bytes']} torn byte(s); "
          f"{summary['worker_restarts']['phase_a']}+"
          f"{summary['worker_restarts']['phase_b']} worker restart(s)")
    print("exactly-once + byte-identity across crash: OK")
    return 0


def _cmd_chaos_serve(args) -> int:
    """The ``repro chaos --serve`` soak (see repro.serve.soak)."""
    from repro.serve.soak import SoakError, run_soak

    if args.crash:
        return _cmd_chaos_crash(args)
    bundle, parent = _materialize_with_mapper(args.input_set, args.scale)
    records = parent.capture_read_records(bundle.reads)
    print(f"soak input: {bundle.describe()}")
    proxy = MiniGiraffe(
        bundle.pangenome.gbz,
        ProxyOptions(
            threads=args.threads,
            batch_size=args.batch_size,
            scheduler=args.scheduler,
        ),
        seed_span=bundle.spec.minimizer_k,
        distance_index=parent.distance_index,
    )
    try:
        summary = run_soak(
            proxy, records,
            tenants=args.tenants,
            requests_per_tenant=args.requests,
            batch_reads=args.batch_reads,
            seed=args.seed,
        )
    except SoakError as error:
        print(f"soak FAILED: {error}", file=sys.stderr)
        return 1
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(summary, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.json}")
    dead = sum(
        t["dead_lettered"] for t in summary["tenants"].values()
    )
    completed = sum(t["completed"] for t in summary["tenants"].values())
    print(f"soak: {args.tenants} tenant(s) x {args.requests} request(s): "
          f"{completed} completed, {dead} dead-lettered "
          f"({summary['dead_letter_queue']} parked in DLQ), "
          f"{summary['injected_raises']} injected raises")
    print("exactly-once invariant: OK")
    return 0


_COMMANDS = {
    "generate": _cmd_generate,
    "map": _cmd_map,
    "validate": _cmd_validate,
    "trace": _cmd_trace,
    "profile": _cmd_profile,
    "chaos": _cmd_chaos,
    "bench": _cmd_bench,
    "tune": _cmd_tune,
    "scale": _cmd_scale,
    "lint": _cmd_lint,
    "races": _cmd_races,
    "serve": _cmd_serve,
    "submit": _cmd_submit,
    "dlq": _cmd_dlq,
    "top": _cmd_top,
    "docs": _cmd_docs,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
