"""Eraser-style lockset race detection for the proxy's shared state.

The static ``missing-lock-guard`` rule only sees mutations of fields the
author *remembered to annotate*.  This module attacks the problem from
the dynamic side: it instruments the classes under test and applies the
classic lockset discipline (Savage et al., "Eraser") — every shared
field must be protected by at least one lock that is held on *every*
access.  Unlike interleaving-based race hunting, the lockset check does
not need the race to actually manifest: it fires as soon as two threads
touch a field and the intersection of the locks they held is empty,
which makes it deterministic and cheap enough to run in CI.

Model (and its deliberate deviations from textbook Eraser):

* A field starts **exclusive** to the thread that first touches it —
  normally the constructing (main) thread.  While exclusive, locks are
  irrelevant: construction happens-before the handoff to workers.
* The first access from a *second* thread ends the exclusive phase and
  seeds the candidate lockset with that thread's held locks; every
  later access intersects it.
* A race is reported only on a **write** made after at least two
  distinct threads have accessed the field post-handoff with an empty
  intersected lockset.  Reporting on writes only keeps the common
  read-stats-after-join pattern quiet (main reading counters after
  ``Thread.join`` holds no lock, but nobody writes concurrently).

Known false-negative limits (see ``docs/STATIC_ANALYSIS.md``): fork/join
happens-before is not modelled beyond the initial handoff, so an object
must not be *re-run* across generations of workers inside one watch
session; fields never touched by two threads during the driven workload
are vacuously clean; and only classes explicitly passed to
:meth:`RaceDetector.watch` are observed.

Instrumentation is plain class patching: ``watch()`` + the context
manager replace ``__setattr__`` / ``__getattribute__`` on the watched
classes, and any raw ``threading.Lock``/``RLock`` assigned to a watched
instance is transparently wrapped in :class:`TracedLock` so locks
created mid-run (e.g. per-region locks in the work-stealing scheduler)
are tracked too.
"""

from __future__ import annotations

import sys
import threading
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple, Type

_LOCK_TYPES = (type(threading.Lock()), type(threading.RLock()))


class TracedLock:
    """A lock wrapper that reports acquire/release to a detector.

    Behaves like ``threading.Lock`` (context manager, ``acquire`` /
    ``release`` / ``locked``); when attached to a
    :class:`RaceDetector` it maintains the per-thread held-lock set the
    lockset algorithm intersects.  Safe to keep using after the
    detector is uninstalled.
    """

    def __init__(self, inner: Optional[Any] = None,
                 detector: Optional["RaceDetector"] = None):
        self._inner = inner if inner is not None else threading.Lock()
        self._detector = detector

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        """Acquire the wrapped lock; on success record it as held."""
        acquired = self._inner.acquire(blocking, timeout)
        if acquired and self._detector is not None:
            self._detector._lock_acquired(self)
        return acquired

    def release(self) -> None:
        """Record the lock as no longer held, then release it."""
        if self._detector is not None:
            self._detector._lock_released(self)
        self._inner.release()

    def locked(self) -> bool:
        """Whether the wrapped lock is currently held by any thread."""
        return self._inner.locked()

    def __enter__(self) -> bool:
        """Context-manager acquire (mirrors ``threading.Lock``)."""
        return self.acquire()

    def __exit__(self, *exc: object) -> None:
        """Context-manager release."""
        self.release()


@dataclass(frozen=True)
class Race:
    """One detected unsynchronized shared write."""

    cls: str
    field: str
    threads: int
    site: str

    def describe(self) -> str:
        """Human-readable one-liner for CLI/test output."""
        return (f"{self.cls}.{self.field}: write with empty lockset after "
                f"{self.threads} threads accessed it (at {self.site})")


@dataclass
class _FieldState:
    """Lockset bookkeeping for one (instance, field) pair.

    Holds a strong reference to the instance so ``id()`` keys cannot be
    recycled mid-session.
    """

    owner: int
    obj: Any
    cls: str
    field: str
    exclusive: bool = True
    lockset: Set[int] = field(default_factory=set)
    threads: Set[int] = field(default_factory=set)
    reported: bool = False


class RaceDetector:
    """Instrument classes and apply the lockset discipline.

    Usage::

        detector = RaceDetector()
        detector.watch(DynamicScheduler, "_cursor", "claims")
        with detector:
            run_workload()
        assert not detector.races

    ``watch`` may be called repeatedly before entering the context; the
    context manager installs the instrumentation on ``__enter__`` and
    restores the original classes on ``__exit__``.
    """

    def __init__(self) -> None:
        self.races: List[Race] = []
        self._watched: Dict[Type[Any], Set[str]] = {}
        self._saved: List[Tuple[Type[Any], str, bool, Any]] = []
        self._states: Dict[Tuple[int, str], _FieldState] = {}
        self._state_lock = threading.Lock()
        self._held = threading.local()
        self._installed = False

    # -- public surface ----------------------------------------------------

    def watch(self, cls: Type[Any], *fields: str) -> "RaceDetector":
        """Track ``fields`` on every instance of ``cls`` (chainable)."""
        self._watched.setdefault(cls, set()).update(fields)
        return self

    def install(self) -> None:
        """Patch the watched classes; idempotent."""
        if self._installed:
            return
        for cls, fields in self._watched.items():
            self._patch(cls, frozenset(fields))
        self._installed = True

    def uninstall(self) -> None:
        """Restore every patched class to its pre-install shape."""
        while self._saved:
            cls, name, was_own, original = self._saved.pop()
            if was_own:
                setattr(cls, name, original)
            else:
                delattr(cls, name)
        self._installed = False

    def __enter__(self) -> "RaceDetector":
        """Install the instrumentation."""
        self.install()
        return self

    def __exit__(self, *exc: object) -> None:
        """Uninstall the instrumentation (races remain recorded)."""
        self.uninstall()

    def summary(self) -> str:
        """Multi-line report of every recorded race (or a clean notice)."""
        if not self.races:
            return "no races detected"
        return "\n".join(race.describe() for race in self.races)

    # -- instrumentation ---------------------------------------------------

    def _patch(self, cls: Type[Any], fields: frozenset) -> None:
        detector = self
        orig_set = cls.__setattr__
        orig_get = cls.__getattribute__
        for name in ("__setattr__", "__getattribute__"):
            self._saved.append(
                (cls, name, name in cls.__dict__, cls.__dict__.get(name))
            )

        def traced_setattr(obj: Any, name: str, value: Any) -> None:
            if isinstance(value, _LOCK_TYPES):
                value = TracedLock(value, detector)
            if name in fields:
                detector._record(obj, cls, name, write=True)
            orig_set(obj, name, value)

        def traced_getattribute(obj: Any, name: str) -> Any:
            if name in fields:
                detector._record(obj, cls, name, write=False)
            return orig_get(obj, name)

        cls.__setattr__ = traced_setattr
        cls.__getattribute__ = traced_getattribute

    def _held_ids(self) -> Set[int]:
        return set(getattr(self._held, "ids", ()))

    def _lock_acquired(self, lock: TracedLock) -> None:
        ids = getattr(self._held, "ids", None)
        if ids is None:
            ids = self._held.ids = []
        ids.append(id(lock))

    def _lock_released(self, lock: TracedLock) -> None:
        ids = getattr(self._held, "ids", None)
        if ids and id(lock) in ids:
            ids.remove(id(lock))

    def _record(self, obj: Any, cls: Type[Any], name: str,
                write: bool) -> None:
        tid = threading.get_ident()
        held = self._held_ids()
        key = (id(obj), name)
        with self._state_lock:
            state = self._states.get(key)
            if state is None:
                self._states[key] = _FieldState(
                    owner=tid, obj=obj, cls=cls.__name__, field=name,
                )
                return
            if state.exclusive:
                if tid == state.owner:
                    return
                state.exclusive = False
                state.lockset = set(held)
            state.threads.add(tid)
            state.lockset &= held
            if (write and not state.reported and not state.lockset
                    and len(state.threads) >= 2):
                state.reported = True
                self.races.append(Race(
                    cls=state.cls,
                    field=name,
                    threads=len(state.threads),
                    site=_caller_site(),
                ))


def _caller_site() -> str:
    """``file:line`` of the nearest stack frame outside this module."""
    frame = sys._getframe(1)
    while frame is not None and frame.f_code.co_filename == __file__:
        frame = frame.f_back
    if frame is None:
        return "<unknown>"
    return f"{frame.f_code.co_filename}:{frame.f_lineno}"


# -- fixtures --------------------------------------------------------------


class RacyCounter:
    """Deliberately broken fixture: unsynchronized shared increments."""

    def __init__(self) -> None:
        self.value = 0

    def increment(self) -> None:
        """Read-modify-write ``value`` with no lock held (the bug)."""
        self.value += 1


class GuardedCounter:
    """Correct counterpart of :class:`RacyCounter`: increments hold a lock."""

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.value = 0

    def increment(self) -> None:
        """Increment ``value`` under ``lock``."""
        with self.lock:
            self.value += 1


def run_racy_fixture(threads: int = 2, increments: int = 128,
                     detector: Optional[RaceDetector] = None) -> List[Race]:
    """Drive :class:`RacyCounter` under a detector and return the races.

    The lockset check is deterministic here: regardless of how the
    threads interleave, both write ``value`` holding no lock, so the
    intersected lockset is empty by the second thread's first write.
    Used by ``repro races --demo-racy`` and the test suite to prove the
    detector fires.
    """
    detector = detector if detector is not None else RaceDetector()
    detector.watch(RacyCounter, "value")
    with detector:
        counter = RacyCounter()
        barrier = threading.Barrier(threads)

        def body() -> None:
            barrier.wait()
            for _ in range(increments):
                counter.increment()

        workers = [threading.Thread(target=body, name=f"racy-{i}")
                   for i in range(threads)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
    return detector.races
