"""The repo-specific lint rules.

Each rule encodes one invariant the proxy's validation story depends on
(see the module docstring of :mod:`repro.qa`).  Rules are pure AST
inspection — nothing here imports the code under analysis, so the lint
can never be fooled by import-time side effects and can safely run over
deliberately broken fixture files.

Path scoping uses ``/``-normalised substring matching: a rule such as
``wallclock-in-kernel`` applies only to files under the kernel packages
(:data:`KERNEL_DIRS`), while ``missing-docstring`` covers the documented
API surface (:data:`DOC_DIRS`) — the same set the standalone
``repro.util.doccheck`` command gates, which this rule wraps so there is
one analysis entry point.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.qa.lint import FileContext, Finding, Rule
from repro.util import doccheck

#: Packages whose hot paths must stay deterministic and wall-clock free.
KERNEL_DIRS = ("repro/giraffe/", "repro/gbwt/", "repro/sched/")

#: Packages forming the documented API surface (docstring-gated).
DOC_DIRS = (
    "repro/obs/",
    "repro/sched/",
    "repro/analysis/",
    "repro/resilience/",
    "repro/qa/",
    "repro/tuning/",
    "repro/serve/",
)

_GUARDED_RE = re.compile(r"#\s*qa:\s*guarded-by\(([^)]+)\)")


def _in_any(norm_path: str, fragments: Sequence[str]) -> bool:
    return any(fragment in norm_path for fragment in fragments)


def _is_self_attr(node: ast.AST, fields: Set[str]) -> Optional[str]:
    """The field name when ``node`` is ``self.<field>`` for a watched field."""
    if (isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
            and node.attr in fields):
        return node.attr
    return None


class UnseededRngRule(Rule):
    """Forbid ambient randomness outside :mod:`repro.util.rng`.

    Flags ``import random`` / ``from random import ...`` (and
    ``numpy.random``) anywhere in ``src/repro`` except ``util/rng.py``,
    plus seeds derived from the wall clock (``seed=time.time()`` or a
    ``SplitMix64``/``derive_seed`` call fed a clock read): both destroy
    the bit-identical-output and byte-identical-chaos-report invariants.
    """

    id = "unseeded-rng"
    description = ("ambient random module or wall-clock-derived seed "
                   "outside util.rng")

    _CLOCKS = {"time", "time_ns", "monotonic", "monotonic_ns", "perf_counter"}

    def applies(self, norm_path: str) -> bool:
        """Everywhere in src/repro except the sanctioned RNG module."""
        return ("src/repro/" in norm_path
                and not norm_path.endswith("repro/util/rng.py"))

    def _mentions_clock(self, node: ast.AST) -> bool:
        for sub in ast.walk(node):
            if (isinstance(sub, ast.Attribute)
                    and isinstance(sub.value, ast.Name)
                    and sub.value.id in ("time", "datetime")
                    and sub.attr in self._CLOCKS | {"now", "utcnow"}):
                return True
        return False

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        """Flag random imports and clock-derived seed expressions."""
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    root = alias.name.split(".")[0]
                    if root == "random" or alias.name == "numpy.random":
                        yield self.finding(
                            ctx, node.lineno,
                            f"import of {alias.name!r}: use "
                            "repro.util.rng.SplitMix64 (seeded, forkable)",
                        )
            elif isinstance(node, ast.ImportFrom):
                module = node.module or ""
                if module == "random" or module.startswith("numpy.random"):
                    yield self.finding(
                        ctx, node.lineno,
                        f"import from {module!r}: use "
                        "repro.util.rng.SplitMix64 (seeded, forkable)",
                    )
            elif isinstance(node, ast.Call):
                callee = node.func
                name = None
                if isinstance(callee, ast.Name):
                    name = callee.id
                elif isinstance(callee, ast.Attribute):
                    name = callee.attr
                seed_args: List[ast.AST] = []
                if name in ("SplitMix64", "derive_seed", "seed"):
                    seed_args.extend(node.args)
                seed_args.extend(
                    kw.value for kw in node.keywords if kw.arg == "seed"
                )
                for arg in seed_args:
                    if self._mentions_clock(arg):
                        yield self.finding(
                            ctx, node.lineno,
                            "seed derived from a clock: seeds must be "
                            "explicit so runs are reproducible",
                        )
                        break


class WallclockInKernelRule(Rule):
    """Forbid wall clocks (and ad-hoc timers) on kernel hot paths.

    Inside :data:`KERNEL_DIRS`, calls such as ``time.time`` or
    ``datetime.now`` make kernel behaviour time-dependent and break
    deterministic operation counts; even ``time.perf_counter`` must be
    routed through :func:`repro.util.timing.now` so instrumentation has
    a single clock to virtualise.
    """

    id = "wallclock-in-kernel"
    description = "wall-clock or raw perf_counter read on a kernel path"

    _WALL = {"time", "time_ns", "ctime", "localtime", "gmtime", "strftime",
             "asctime"}
    _RAW_TIMERS = {"perf_counter", "perf_counter_ns", "monotonic",
                   "monotonic_ns", "process_time", "thread_time"}
    _DATETIME = {"now", "utcnow", "today", "fromtimestamp"}

    def applies(self, norm_path: str) -> bool:
        """Kernel packages only (giraffe/, gbwt/, sched/)."""
        return _in_any(norm_path, KERNEL_DIRS)

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        """Flag wall-clock and raw-timer reads plus their imports."""
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
                base, attr = node.value.id, node.attr
                if base == "time" and attr in self._WALL:
                    yield self.finding(
                        ctx, node.lineno,
                        f"wall clock time.{attr} on a kernel path breaks "
                        "deterministic operation counts",
                    )
                elif base == "time" and attr in self._RAW_TIMERS:
                    yield self.finding(
                        ctx, node.lineno,
                        f"raw time.{attr} on a kernel path: use "
                        "repro.util.timing.now() (the one sanctioned clock)",
                    )
                elif base in ("datetime", "date") and attr in self._DATETIME:
                    yield self.finding(
                        ctx, node.lineno,
                        f"wall clock {base}.{attr} on a kernel path breaks "
                        "deterministic operation counts",
                    )
            elif isinstance(node, ast.ImportFrom):
                module = node.module or ""
                if module == "time":
                    banned = {a.name for a in node.names} & (
                        self._WALL | self._RAW_TIMERS
                    )
                    if banned:
                        names = ", ".join(sorted(banned))
                        yield self.finding(
                            ctx, node.lineno,
                            f"importing {names} from time on a kernel path: "
                            "use repro.util.timing.now()",
                        )
                elif module == "datetime":
                    yield self.finding(
                        ctx, node.lineno,
                        "datetime on a kernel path breaks deterministic "
                        "operation counts",
                    )


class BroadExceptRule(Rule):
    """Flag bare/broad exception handlers that can swallow failures.

    ``except:``, ``except Exception`` and ``except BaseException`` are
    allowed only when the handler visibly propagates the failure — a
    ``raise`` statement somewhere in the handler, or a ``set_error``
    call marking the surrounding span failed.  Anything else is the bug
    class PR 3 fixed: a worker dies and the run silently reports
    success.
    """

    id = "broad-except"
    description = "bare/broad except without re-raise or span set_error"

    _BROAD = {"Exception", "BaseException"}

    def _is_broad(self, handler: ast.ExceptHandler) -> bool:
        node = handler.type
        if node is None:
            return True
        types = node.elts if isinstance(node, ast.Tuple) else [node]
        for entry in types:
            if isinstance(entry, ast.Name) and entry.id in self._BROAD:
                return True
            if isinstance(entry, ast.Attribute) and entry.attr in self._BROAD:
                return True
        return False

    @staticmethod
    def _handler_propagates(handler: ast.ExceptHandler) -> bool:
        for node in ast.walk(ast.Module(body=handler.body, type_ignores=[])):
            if isinstance(node, ast.Raise):
                return True
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "set_error"):
                return True
        return False

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        """Flag broad handlers whose body neither raises nor set_errors."""
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ExceptHandler) and self._is_broad(node):
                if not self._handler_propagates(node):
                    caught = ("bare except" if node.type is None
                              else f"except {ast.unparse(node.type)}")
                    yield self.finding(
                        ctx, node.lineno,
                        f"{caught} without re-raise or set_error can hide "
                        "failures; narrow the type or propagate",
                    )


class MutableDefaultArgRule(Rule):
    """Flag mutable default argument values (shared across calls)."""

    id = "mutable-default-arg"
    description = "mutable default argument value"

    _MUTABLE_CALLS = {"list", "dict", "set", "bytearray", "defaultdict",
                      "deque"}

    def _is_mutable(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                             ast.DictComp, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            callee = node.func
            name = callee.id if isinstance(callee, ast.Name) else (
                callee.attr if isinstance(callee, ast.Attribute) else None
            )
            return name in self._MUTABLE_CALLS
        return False

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        """Flag list/dict/set (literals or constructors) used as defaults."""
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                defaults = list(node.args.defaults) + [
                    d for d in node.args.kw_defaults if d is not None
                ]
                for default in defaults:
                    if self._is_mutable(default):
                        yield self.finding(
                            ctx, default.lineno,
                            f"mutable default argument in {node.name}(): "
                            "one instance is shared across every call",
                        )


class MissingLockGuardRule(Rule):
    """Enforce ``# qa: guarded-by(<lock>)`` annotations.

    A field declared shared via an inline annotation on its assignment::

        self.claims = 0  # qa: guarded-by(self._lock)

    must only be mutated inside a ``with <lock>:`` block anywhere else
    in the class.  ``__init__`` is exempt (construction happens-before
    publication to other threads); single-threaded reset paths that run
    before workers spawn carry an explicit ``# qa: ignore`` instead, so
    the exemption stays visible in the source.

    Mutations tracked: assignments and augmented assignments to
    ``self.field`` or ``self.field[...]``, and calls to mutating
    container methods (``append``, ``pop``, ``update``, ...).  Reads are
    not checked — that is the race detector's job
    (:mod:`repro.qa.races`).
    """

    id = "missing-lock-guard"
    description = "guarded field mutated outside its declared lock"

    _MUTATORS = {"append", "appendleft", "add", "remove", "discard", "pop",
                 "popleft", "popitem", "clear", "update", "setdefault",
                 "extend", "insert", "sort", "reverse"}

    def _guarded_fields(self, ctx: FileContext,
                        cls: ast.ClassDef) -> Dict[str, str]:
        guarded: Dict[str, str] = {}
        for node in ast.walk(cls):
            if not isinstance(node, (ast.Assign, ast.AnnAssign)):
                continue
            match = _GUARDED_RE.search(ctx.comments.get(node.lineno, ""))
            if not match:
                continue
            lock = match.group(1).replace(" ", "")
            targets = (node.targets if isinstance(node, ast.Assign)
                       else [node.target])
            for target in targets:
                if (isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"):
                    guarded[target.attr] = lock
        return guarded

    def _mutations(self, node: ast.AST,
                   fields: Set[str]) -> Iterable[Tuple[int, str]]:
        """Yield ``(lineno, field)`` for guarded-field mutations in ``node``."""
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = (node.targets if isinstance(node, ast.Assign)
                       else [node.target])
            for target in targets:
                base = target
                if isinstance(target, ast.Subscript):
                    base = target.value
                name = _is_self_attr(base, fields)
                if name is not None:
                    yield node.lineno, name
        elif isinstance(node, ast.Expr) and isinstance(node.value, ast.Call):
            callee = node.value.func
            if (isinstance(callee, ast.Attribute)
                    and callee.attr in self._MUTATORS):
                name = _is_self_attr(callee.value, fields)
                if name is not None:
                    yield node.lineno, name

    def _walk_body(self, ctx: FileContext, body: List[ast.stmt],
                   guarded: Dict[str, str], held: Set[str],
                   out: List[Finding]) -> None:
        fields = set(guarded)
        for stmt in body:
            if isinstance(stmt, ast.With):
                acquired = {
                    ast.unparse(item.context_expr).replace(" ", "")
                    for item in stmt.items
                }
                self._walk_body(ctx, stmt.body, guarded, held | acquired, out)
                continue
            for lineno, name in self._mutations(stmt, fields):
                if guarded[name] not in held:
                    out.append(self.finding(
                        ctx, lineno,
                        f"write to {name!r} outside "
                        f"`with {guarded[name]}:` "
                        f"(declared qa: guarded-by({guarded[name]}))",
                    ))
            for child_body in (
                getattr(stmt, "body", None),
                getattr(stmt, "orelse", None),
                getattr(stmt, "finalbody", None),
            ):
                if child_body:
                    self._walk_body(ctx, child_body, guarded, held, out)
            for handler in getattr(stmt, "handlers", []) or []:
                self._walk_body(ctx, handler.body, guarded, held, out)

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        """Flag guarded-field mutations outside their declared lock."""
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            guarded = self._guarded_fields(ctx, node)
            if not guarded:
                continue
            out: List[Finding] = []
            for item in node.body:
                if (isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
                        and item.name != "__init__"):
                    self._walk_body(ctx, item.body, guarded, set(), out)
            yield from out


class SwallowedWorkerErrorRule(Rule):
    """Flag thread-body exception handlers that drop the error.

    For any function used as a ``threading.Thread(target=...)`` or
    ``executor.submit(...)`` callee in the same file, an exception
    handler must re-raise, call ``set_error``, or at minimum *store* the
    caught exception (the collect-and-re-raise-after-join pattern).  A
    handler that ignores the bound exception is exactly the PR 3 bug:
    the worker dies and the scheduler reports success.
    """

    id = "swallowed-worker-error"
    description = "thread-target exception handler drops the error"

    def _thread_targets(self, tree: ast.AST) -> Set[str]:
        names: Set[str] = set()
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            callee = node.func
            is_thread = (
                (isinstance(callee, ast.Attribute) and callee.attr == "Thread")
                or (isinstance(callee, ast.Name) and callee.id == "Thread")
            )
            is_submit = (isinstance(callee, ast.Attribute)
                         and callee.attr == "submit")
            candidates: List[ast.AST] = []
            if is_thread:
                candidates.extend(
                    kw.value for kw in node.keywords if kw.arg == "target"
                )
            if is_submit and node.args:
                candidates.append(node.args[0])
            for cand in candidates:
                if isinstance(cand, ast.Name):
                    names.add(cand.id)
                elif isinstance(cand, ast.Attribute):
                    names.add(cand.attr)
        return names

    @staticmethod
    def _handler_keeps_error(handler: ast.ExceptHandler) -> bool:
        bound = handler.name
        for node in ast.walk(ast.Module(body=handler.body, type_ignores=[])):
            if isinstance(node, ast.Raise):
                return True
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "set_error"):
                return True
            if (bound is not None and isinstance(node, ast.Name)
                    and node.id == bound):
                return True
        return False

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        """Flag error-dropping handlers inside thread-target functions."""
        targets = self._thread_targets(ctx.tree)
        if not targets:
            return
        for node in ast.walk(ctx.tree):
            if (isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and node.name in targets):
                for sub in ast.walk(node):
                    if (isinstance(sub, ast.ExceptHandler)
                            and not self._handler_keeps_error(sub)):
                        yield self.finding(
                            ctx, sub.lineno,
                            f"handler in thread target {node.name}() drops "
                            "the exception: re-raise, set_error, or store "
                            "it for the joining thread",
                        )


class SpanParentContextRule(Rule):
    """Request-path spans must carry explicit trace context.

    In ``repro/serve/`` and ``repro/sched/`` — code that runs on pooled
    worker threads on behalf of a specific request — a
    ``tracer.span(...)`` / ``tracer.record_span(...)`` call without an
    explicit ``context=`` (or pre-allocated ``ids=``) falls back to the
    calling thread's ambient context stack.  On a pooled thread that is
    whatever request last ran there, so span trees silently cross-link
    between requests and trace-join completeness collapses.  Parent
    context must be propagated explicitly on these paths.
    """

    id = "span-parent-context"
    description = ("span created in serve/sched without propagated "
                   "parent context")

    _SPAN_METHODS = {"span", "record_span"}
    _CONTEXT_KWARGS = {"context", "ids"}

    def applies(self, norm_path: str) -> bool:
        """The request-scoped packages (serve/, sched/)."""
        return _in_any(norm_path, ("repro/serve/", "repro/sched/"))

    @staticmethod
    def _is_tracer(node: ast.AST) -> bool:
        # Receivers that look like a tracer: ``tracer``, ``self.tracer``,
        # ``get_tracer()`` / ``obs_trace.get_tracer()``.
        if isinstance(node, ast.Name):
            return "tracer" in node.id.lower()
        if isinstance(node, ast.Attribute):
            return "tracer" in node.attr.lower()
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name):
                return "tracer" in func.id.lower()
            if isinstance(func, ast.Attribute):
                return "tracer" in func.attr.lower()
        return False

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        """Flag tracer span calls missing a context=/ids= kwarg."""
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (isinstance(func, ast.Attribute)
                    and func.attr in self._SPAN_METHODS
                    and self._is_tracer(func.value)):
                continue
            kwargs = {kw.arg for kw in node.keywords}
            if None in kwargs:
                continue  # a **splat may be supplying the context
            if not (kwargs & self._CONTEXT_KWARGS):
                yield self.finding(
                    ctx, node.lineno,
                    f"tracer.{func.attr}(...) without context=/ids=: the "
                    "ambient thread-local parent on a pooled worker "
                    "thread cross-links request trees",
                )


class UnsupervisedSubprocessRule(Rule):
    """Child processes in serve/resilience/sched must be join-with-timeout'd.

    In ``repro/serve/``, ``repro/resilience/``, and ``repro/sched/`` —
    the crash-only serving stack plus the process-pool scheduler — any
    code that creates a child process
    (``multiprocessing`` / ``ctx.Process(...)``, ``subprocess.Popen`` /
    ``run`` / ``check_output``) must somewhere in the same file join it
    *with a timeout*: an unbounded ``join()`` (or none at all) is how a
    wedged child turns a crash-only design into a hung shutdown.  The
    check is file-scoped because supervision is structural — the spawn
    and the bounded join legitimately live in different methods of the
    same supervisor.
    """

    id = "unsupervised-subprocess"
    description = ("child process created in serve/resilience/sched "
                   "without a join-with-timeout in the file")

    _PROCESS_CTORS = {"Process", "Popen"}
    _SUBPROCESS_FUNCS = {"run", "check_output", "check_call", "call"}

    def applies(self, norm_path: str) -> bool:
        """The crash-only serving stack (serve/, resilience/, sched/)."""
        return _in_any(
            norm_path, ("repro/serve/", "repro/resilience/", "repro/sched/")
        )

    def _spawn_sites(self, tree: ast.AST) -> List[Tuple[int, str]]:
        sites: List[Tuple[int, str]] = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            callee = node.func
            if isinstance(callee, ast.Name) and callee.id in self._PROCESS_CTORS:
                sites.append((node.lineno, callee.id))
            elif isinstance(callee, ast.Attribute):
                if callee.attr in self._PROCESS_CTORS:
                    sites.append((node.lineno, callee.attr))
                elif (callee.attr in self._SUBPROCESS_FUNCS
                      and isinstance(callee.value, ast.Name)
                      and callee.value.id == "subprocess"):
                    sites.append((node.lineno, f"subprocess.{callee.attr}"))
        return sites

    @staticmethod
    def _has_bounded_join(tree: ast.AST) -> bool:
        # A ``.join`` whose timeout is explicit: a ``timeout=`` kwarg or
        # a numeric positional.  (``",".join(parts)`` passes a
        # non-numeric positional and so never counts.)
        for node in ast.walk(tree):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "join"):
                continue
            if any(kw.arg == "timeout" for kw in node.keywords):
                return True
            if node.args and isinstance(node.args[0], ast.Constant) \
                    and isinstance(node.args[0].value, (int, float)):
                return True
        return False

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        """Flag process creation in files lacking a bounded join."""
        sites = self._spawn_sites(ctx.tree)
        if not sites or self._has_bounded_join(ctx.tree):
            return
        for lineno, label in sites:
            yield self.finding(
                ctx, lineno,
                f"{label}(...) without any join-with-timeout in this "
                "file: a wedged child would hang shutdown — join "
                "bounded, then kill",
            )


class MissingDocstringRule(Rule):
    """Docstring coverage for the documented API surface.

    Wraps :mod:`repro.util.doccheck` (the former standalone gate) as a
    lint rule so one command reports everything; scope is
    :data:`DOC_DIRS`.
    """

    id = "missing-docstring"
    description = "public API object without a docstring"

    def applies(self, norm_path: str) -> bool:
        """The docstring-gated packages (DOC_DIRS)."""
        return "src/repro/" in norm_path and _in_any(norm_path, DOC_DIRS)

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        """Report each doccheck issue as a lint finding."""
        for issue in doccheck.check_tree(ctx.path, ctx.tree):
            yield self.finding(
                ctx, issue.lineno,
                f"{issue.kind} {issue.qualname!r} has no docstring",
            )


#: The shipped rule set, in reporting order.
DEFAULT_RULES = (
    UnseededRngRule(),
    WallclockInKernelRule(),
    BroadExceptRule(),
    MutableDefaultArgRule(),
    MissingLockGuardRule(),
    SwallowedWorkerErrorRule(),
    SpanParentContextRule(),
    UnsupervisedSubprocessRule(),
    MissingDocstringRule(),
)


def all_rule_ids() -> Set[str]:
    """Ids of every registered rule (plus the engine's synthetic ones)."""
    return {rule.id for rule in DEFAULT_RULES} | {
        "unused-suppression", "parse-error"
    }


def rules_by_id(ids: Iterable[str]) -> List[Rule]:
    """Resolve rule ids to instances; raises on unknown ids."""
    registry = {rule.id: rule for rule in DEFAULT_RULES}
    selected: List[Rule] = []
    for rule_id in ids:
        if rule_id not in registry:
            raise KeyError(
                f"unknown rule {rule_id!r}; known: {sorted(registry)}"
            )
        selected.append(registry[rule_id])
    return selected
