"""The lint rule engine: contexts, suppressions, baselines, the runner.

A :class:`Rule` inspects one parsed file (a :class:`FileContext`) and
yields :class:`Finding` records.  The engine owns everything around the
rules:

* **Inline suppressions** — a ``# qa: ignore[rule-id]`` comment on the
  offending line silences that rule there (comma-separate several ids).
  A suppression that silences nothing is itself reported as an
  ``unused-suppression`` finding, so stale ignores cannot accumulate.
* **Baseline** — pre-existing findings can be committed to a baseline
  file (``repro lint --update-baseline``).  The gate then fails only on
  *new* findings — and on *stale* baseline entries whose finding has
  been fixed, so the baseline can only ever shrink.
* **Fingerprints** — baseline matching keys on
  ``(path, rule, source line text)``, not on line numbers, so findings
  survive unrelated edits above them.

The repo-specific rules live in :mod:`repro.qa.rules`; the CLI surface
is ``repro lint`` (:mod:`repro.cli`).  See ``docs/STATIC_ANALYSIS.md``.
"""

from __future__ import annotations

import ast
import hashlib
import io
import json
import os
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set

from repro.util.loc import iter_python_files

#: Recognised severities, strongest first.  Severity is informational —
#: the gate fails on any non-baselined finding regardless of severity.
SEVERITIES = ("error", "warning")

_SUPPRESS_RE = re.compile(r"#\s*qa:\s*ignore\[([A-Za-z0-9_\-, ]+)\]")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str
    line: int
    message: str
    severity: str = "error"
    #: The stripped source line, used for line-number-independent
    #: baseline fingerprints.
    snippet: str = ""

    def describe(self) -> str:
        """Human-readable one-liner for CLI/test output."""
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"

    def fingerprint(self) -> str:
        """Stable identity for baseline matching (path, rule, snippet)."""
        payload = "|".join((_norm_path(self.path), self.rule, self.snippet))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready representation (the baseline entry schema)."""
        return {
            "fingerprint": self.fingerprint(),
            "rule": self.rule,
            "path": _norm_path(self.path),
            "line": self.line,
            "message": self.message,
        }


def _norm_path(path: str) -> str:
    return path.replace(os.sep, "/")


class FileContext:
    """One parsed source file plus its suppression comments.

    Rules receive this instead of raw source so each file is read and
    parsed exactly once per run regardless of how many rules inspect it.
    """

    def __init__(self, path: str, source: str):
        self.path = path
        self.norm_path = _norm_path(path)
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=path)
        #: line -> text of the ``#`` comment on that line (real comment
        #: tokens only — a ``# qa:`` marker quoted inside a docstring is
        #: documentation, not a directive).
        self.comments: Dict[int, str] = {}
        try:
            for tok in tokenize.generate_tokens(io.StringIO(source).readline):
                if tok.type == tokenize.COMMENT:
                    self.comments[tok.start[0]] = tok.string
        except (tokenize.TokenError, IndentationError):
            pass  # ast.parse accepted it; comments stay best-effort
        #: line -> rule ids suppressed on that line.
        self.suppressions: Dict[int, Set[str]] = {}
        self._used: Dict[int, Set[str]] = {}
        for lineno, text in self.comments.items():
            match = _SUPPRESS_RE.search(text)
            if match:
                ids = {p.strip() for p in match.group(1).split(",") if p.strip()}
                if ids:
                    self.suppressions[lineno] = ids

    def line_text(self, lineno: int) -> str:
        """The stripped source text of 1-indexed line ``lineno``."""
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def suppresses(self, rule_id: str, lineno: int) -> bool:
        """True when ``rule_id`` is ignored on ``lineno`` (marks it used)."""
        ids = self.suppressions.get(lineno)
        if ids is None or rule_id not in ids:
            return False
        self._used.setdefault(lineno, set()).add(rule_id)
        return True

    def unused_suppressions(self, active_rule_ids: Set[str],
                            known_rule_ids: Set[str]) -> List[Finding]:
        """Suppressions that silenced nothing this run.

        Only reported for rules that actually ran (so a ``--rules``
        subset never flags ignores belonging to skipped rules) — except
        for ids no registered rule owns, which are always reported as
        typos.
        """
        findings: List[Finding] = []
        for lineno in sorted(self.suppressions):
            used = self._used.get(lineno, set())
            for rule_id in sorted(self.suppressions[lineno] - used):
                if rule_id in known_rule_ids and rule_id not in active_rule_ids:
                    continue
                detail = ("no such rule"
                          if rule_id not in known_rule_ids
                          else "matches no finding on this line")
                findings.append(Finding(
                    rule="unused-suppression",
                    path=self.path,
                    line=lineno,
                    message=f"suppression for {rule_id!r} is stale ({detail})",
                    snippet=self.line_text(lineno),
                ))
        return findings


class Rule:
    """Base class for lint rules.

    Subclasses set :attr:`id`, :attr:`severity`, :attr:`description`,
    optionally narrow :meth:`applies`, and implement :meth:`check`.
    """

    id = "abstract"
    severity = "error"
    description = ""

    def applies(self, norm_path: str) -> bool:
        """Whether this rule inspects the file at ``norm_path``."""
        return True

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        """Yield findings for one file (no suppression filtering here)."""
        raise NotImplementedError

    def finding(self, ctx: FileContext, lineno: int, message: str) -> Finding:
        """Build a finding at ``lineno`` with the line snippet filled in."""
        return Finding(
            rule=self.id,
            path=ctx.path,
            line=lineno,
            message=message,
            severity=self.severity,
            snippet=ctx.line_text(lineno),
        )


@dataclass
class LintResult:
    """Everything one lint run produced."""

    findings: List[Finding] = field(default_factory=list)
    files: int = 0
    suppressed: int = 0

    def by_rule(self) -> Dict[str, int]:
        """Finding counts keyed by rule id."""
        counts: Dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return counts


def lint_source(path: str, source: str, rules: Sequence[Rule],
                known_rule_ids: Optional[Set[str]] = None) -> LintResult:
    """Lint one in-memory source file with ``rules``.

    A file that fails to parse yields a single ``parse-error`` finding
    instead of crashing the run.
    """
    result = LintResult(files=1)
    try:
        ctx = FileContext(path, source)
    except SyntaxError as exc:
        result.findings.append(Finding(
            rule="parse-error",
            path=path,
            line=exc.lineno or 1,
            message=f"file does not parse: {exc.msg}",
        ))
        return result
    active_ids = set()
    raw: List[Finding] = []
    for rule in rules:
        if rule.applies(ctx.norm_path):
            active_ids.add(rule.id)
            raw.extend(rule.check(ctx))
    for finding in raw:
        if ctx.suppresses(finding.rule, finding.line):
            result.suppressed += 1
        else:
            result.findings.append(finding)
    known = known_rule_ids if known_rule_ids is not None else active_ids
    result.findings.extend(ctx.unused_suppressions(active_ids, known))
    result.findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return result


def lint_paths(paths: Sequence[str], rules: Sequence[Rule],
               known_rule_ids: Optional[Set[str]] = None) -> LintResult:
    """Lint files and/or directory trees; aggregates per-file results."""
    result = LintResult()
    for root in paths:
        files = [root] if os.path.isfile(root) else list(iter_python_files(root))
        for path in files:
            with open(path, "r", encoding="utf-8") as handle:
                source = handle.read()
            part = lint_source(path, source, rules, known_rule_ids)
            result.findings.extend(part.findings)
            result.files += part.files
            result.suppressed += part.suppressed
    result.findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return result


# -- baseline --------------------------------------------------------------


@dataclass
class BaselineDelta:
    """The gate's verdict: what is new, what is stale."""

    new: List[Finding] = field(default_factory=list)
    #: Baseline entries whose finding no longer exists — the finding was
    #: fixed, so the entry must be removed (the baseline only shrinks).
    stale: List[Dict[str, object]] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """True when the run matches the baseline exactly."""
        return not self.new and not self.stale


class Baseline:
    """A committed snapshot of accepted pre-existing findings."""

    SCHEMA = 1

    def __init__(self, entries: Optional[List[Dict[str, object]]] = None):
        self.entries = list(entries or [])

    @classmethod
    def load(cls, path: str) -> "Baseline":
        """Read a baseline file; a missing file is an empty baseline."""
        if not os.path.exists(path):
            return cls()
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        if payload.get("schema") != cls.SCHEMA:
            raise ValueError(
                f"unsupported baseline schema {payload.get('schema')!r} "
                f"in {path} (expected {cls.SCHEMA})"
            )
        return cls(payload.get("entries", []))

    @classmethod
    def from_findings(cls, findings: Sequence[Finding]) -> "Baseline":
        """Snapshot current findings as the new accepted baseline."""
        return cls([f.to_dict() for f in findings])

    def save(self, path: str) -> None:
        """Write the baseline file (sorted, newline-terminated JSON)."""
        directory = os.path.dirname(path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        payload = {
            "schema": self.SCHEMA,
            "entries": sorted(
                self.entries,
                key=lambda e: (str(e.get("path")), str(e.get("fingerprint"))),
            ),
        }
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")

    def delta(self, findings: Sequence[Finding],
              rule_ids: Optional[Set[str]] = None) -> BaselineDelta:
        """Compare current ``findings`` against this baseline.

        Matching is a multiset comparison on fingerprints.  With
        ``rule_ids`` given, baseline entries for other rules are ignored
        (so a ``--rules`` subset run cannot mark them stale).
        """
        remaining: Dict[str, int] = {}
        considered: List[Dict[str, object]] = []
        for entry in self.entries:
            if rule_ids is not None and entry.get("rule") not in rule_ids:
                continue
            considered.append(entry)
            fp = str(entry.get("fingerprint"))
            remaining[fp] = remaining.get(fp, 0) + 1
        delta = BaselineDelta()
        matched: Dict[str, int] = {}
        for finding in findings:
            fp = finding.fingerprint()
            if remaining.get(fp, 0) > 0:
                remaining[fp] -= 1
                matched[fp] = matched.get(fp, 0) + 1
            else:
                delta.new.append(finding)
        for entry in considered:
            fp = str(entry.get("fingerprint"))
            if matched.get(fp, 0) > 0:
                matched[fp] -= 1
            else:
                delta.stale.append(entry)
        return delta
