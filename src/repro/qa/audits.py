"""Canned lockset audits over the subsystems that share state.

Each audit builds a :class:`repro.qa.races.RaceDetector`, watches the
shared fields of one subsystem, drives a small multi-threaded workload
through it, and returns the detector for inspection.  CI runs them via
``repro races``; the test suite asserts they come back clean (and that
the deliberately racy fixture does not).

The workloads are intentionally tiny — the lockset discipline does not
need a racy interleaving to fire, only two threads touching a field —
so the audits finish in seconds while still covering the real claim,
steal, retry, watchdog, and cache paths.

Imports of the audited subsystems live inside the audit functions so
importing :mod:`repro.qa` stays cheap and dependency-free.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Optional

from repro.qa.races import RaceDetector


def _busy_batch(first: int, last: int, thread_id: int) -> None:
    """A synthetic batch whose cost grows with the item index.

    The skew makes early workers finish first and go stealing, so the
    cross-thread claim paths of the work-stealing scheduler actually
    execute under the audit.
    """
    sink = 0
    for item in range(first, last):
        for step in range(40 * (item + 1)):
            sink += step
    del sink


def audit_schedulers(threads: int = 4, items: int = 192,
                     batch_size: int = 4) -> RaceDetector:
    """Lockset-audit the three scheduling policies.

    Watches the shared claim/steal state of the dynamic and
    work-stealing schedulers (the static policy shares nothing by
    construction, but runs under the detector anyway) and drives one
    skew-loaded run of each.
    """
    from repro.sched.dynamic import DynamicScheduler
    from repro.sched.static import StaticScheduler
    from repro.sched.work_stealing import WorkStealingScheduler, _Region

    detector = RaceDetector()
    detector.watch(DynamicScheduler, "_cursor", "claims")
    detector.watch(
        WorkStealingScheduler, "steals", "steal_attempts", "_victim_depths"
    )
    detector.watch(_Region, "cursor")
    with detector:
        for factory in (StaticScheduler, DynamicScheduler,
                        WorkStealingScheduler):
            # Fresh instance per run: the detector models the initial
            # construction handoff but not repeated fork/join epochs.
            factory().run(items, _busy_batch, threads, batch_size)
    return detector


def audit_chaos(threads: int = 4, items: int = 128, batch_size: int = 4,
                seed: int = 7) -> RaceDetector:
    """Lockset-audit the resilience layer under fault injection.

    Runs the dynamic scheduler with a seeded fault plan and a retry
    policy whose watchdog polls aggressively, so the batch harness's
    in-flight table, duration estimate, and requeue queue are hit
    concurrently by the workers *and* the watchdog thread.
    """
    from repro.resilience.faults import FaultInjector, FaultPlan
    from repro.resilience.harness import BatchHarness
    from repro.resilience.policy import FailurePolicy, WatchdogConfig
    from repro.sched.dynamic import DynamicScheduler

    detector = RaceDetector()
    detector.watch(
        BatchHarness, "_inflight", "_dur_count", "_dur_total",
        "_completed", "_requeued", "_requeue_queue",
    )
    detector.watch(
        FaultInjector, "_attempts", "injected_raises", "injected_delays",
        "injected_storms",
    )
    plan = FaultPlan(
        seed=seed, raise_rate=0.15, delay_rate=0.2, max_delay=0.002,
        storm_rate=0.1,
    )
    policy = FailurePolicy.retry(
        max_attempts=3, seed=seed,
        watchdog=WatchdogConfig(poll_interval=0.002, min_deadline=0.05,
                                requeue=True),
    )
    with detector:
        with plan.install():
            DynamicScheduler().run(
                items, _busy_batch, threads, batch_size, resilience=policy
            )
    return detector


def audit_proxy(threads: int = 3, reads: int = 18,
                batch_size: int = 2) -> RaceDetector:
    """Lockset-audit CachedGBWT and the packed-sequence table under
    real proxy runs.

    Maps a tiny synthetic read set once per scheduling policy with the
    cache's hash-table internals and statistics counters watched.  The
    caches are created per-worker (inside the worker thread, under the
    setup lock), so the expected verdict is "exclusively accessed":
    any cross-thread write the instrumentation sees is a regression.

    The graph's :class:`~repro.graph.variation_graph.PackedSequenceTable`
    is watched too: it is built once during single-threaded setup and
    must be strictly read-only while worker threads share it — the
    extension kernel's packed fast path depends on that invariant, and
    a post-build write (e.g. someone re-introducing lazy memoization in
    ``fetch``) would be flagged here.
    """
    from repro.core.options import ProxyOptions
    from repro.core.proxy import MiniGiraffe
    from repro.gbwt.cache import CachedGBWT
    from repro.giraffe import GiraffeMapper, GiraffeOptions
    from repro.graph.variation_graph import PackedSequenceTable, VariationGraph
    from repro.workloads import build_pangenome
    from repro.workloads.reads import ReadSimulator

    pangenome = build_pangenome(
        seed=99, reference_length=800, haplotype_count=4
    )
    sequences = {
        name: pangenome.graph.path_sequence(name)
        for name in pangenome.graph.paths
    }
    simulator = ReadSimulator(
        sequences, read_length=60, error_rate=0.0, seed=11
    )
    read_set = simulator.simulate_single(reads)
    mapper = GiraffeMapper(
        pangenome.gbz, GiraffeOptions(minimizer_k=11, minimizer_w=7)
    )
    records = mapper.capture_read_records(read_set)

    detector = RaceDetector()
    detector.watch(
        CachedGBWT, "hits", "misses", "rehashes", "probe_steps", "storms",
        "prefetched", "_size", "_keys", "_values", "_capacity", "_mask",
    )
    detector.watch(PackedSequenceTable, "_packed", "built_nodes")
    detector.watch(VariationGraph, "_packed_table")
    with detector:
        for scheduler in ("static", "dynamic", "work_stealing"):
            proxy = MiniGiraffe(
                pangenome.gbz,
                ProxyOptions(threads=threads, batch_size=batch_size,
                             scheduler=scheduler),
                seed_span=11,
                distance_index=mapper.distance_index,
            )
            proxy.map_reads(records)
    return detector


#: The canned audits, in the order ``repro races`` runs them.
AUDITS: Dict[str, Callable[[], RaceDetector]] = {
    "schedulers": audit_schedulers,
    "chaos": audit_chaos,
    "proxy": audit_proxy,
}


def run_audits(
    names: Optional[Iterable[str]] = None,
) -> Dict[str, RaceDetector]:
    """Run the named audits (default: all) and return their detectors."""
    selected = list(names) if names is not None else list(AUDITS)
    results: Dict[str, RaceDetector] = {}
    for name in selected:
        if name not in AUDITS:
            raise KeyError(
                f"unknown audit {name!r}; choose from {sorted(AUDITS)}"
            )
        results[name] = AUDITS[name]()
    return results
