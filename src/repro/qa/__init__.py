"""repro.qa: static and dynamic analysis for the proxy's invariants.

The proxy is validated by *bit-identical* extension output, deterministic
kernel-operation counts, and byte-identical chaos reports per seed —
invariants that an unseeded RNG, a wall-clock read on a kernel path, or
a data race in a scheduler destroys silently.  This package turns those
rules from review lore into machine-checked gates:

* :mod:`repro.qa.lint` — a rule engine over :mod:`ast` with inline
  ``# qa: ignore[rule-id]`` suppressions and a committed baseline file;
* :mod:`repro.qa.rules` — the repo-specific rules (unseeded RNG,
  wall clock in kernel paths, broad excepts, mutable default args,
  lock-guard violations, swallowed worker errors, docstring coverage);
* :mod:`repro.qa.races` — an Eraser-style lockset race detector built
  from an instrumented ``threading.Lock`` and a class attribute tracer;
* :mod:`repro.qa.audits` — canned race audits over the three schedulers
  and the proxy (CachedGBWT) that CI and the tests drive.

Entry points: ``repro lint`` and ``repro races`` (see
``docs/STATIC_ANALYSIS.md``), both wired into ``scripts/ci.sh --lint``.
"""

from repro.qa.audits import AUDITS, run_audits
from repro.qa.lint import (
    Baseline,
    BaselineDelta,
    FileContext,
    Finding,
    LintResult,
    Rule,
    lint_paths,
    lint_source,
)
from repro.qa.races import RaceDetector, Race, TracedLock, run_racy_fixture
from repro.qa.rules import DEFAULT_RULES, all_rule_ids, rules_by_id

__all__ = [
    "AUDITS",
    "Baseline",
    "BaselineDelta",
    "DEFAULT_RULES",
    "FileContext",
    "Finding",
    "LintResult",
    "Race",
    "RaceDetector",
    "Rule",
    "TracedLock",
    "all_rule_ids",
    "lint_paths",
    "lint_source",
    "rules_by_id",
    "run_audits",
    "run_racy_fixture",
]
