"""The docs-drift gate: the CLI surface must appear in the docs tree.

Documentation rots in one specific, mechanical way: a flag is added to
``repro.cli._build_parser`` and the markdown that teaches the command is
never updated.  This module closes that gap the same way the lint rules
close code-quality gaps — by walking the *actual* parser (not a
hand-maintained list) and requiring every subcommand and every long
option to appear in the documentation corpus:

* every subcommand ``<name>`` must be mentioned as ``repro <name>``
  somewhere in the corpus (README plus ``docs/*.md``);
* every long flag of that subcommand must appear *in a file that also
  mentions the subcommand* — a ``--json`` documented for ``repro
  bench`` does not excuse an undocumented ``--json`` on ``repro
  chaos``.

``repro docs`` runs the check (and ``scripts/ci.sh --lint`` wires it
into CI); a unit test runs it too, so drift fails the tier-1 suite.
The gate is deliberately one-directional: extra prose about flags that
no longer exist is a style problem, not a drift problem, and stays out
of scope.
"""

from __future__ import annotations

import argparse
import glob
import os
from typing import Dict, List, Set

#: Flags exempt from the per-command documentation requirement.
#: ``--help`` is argparse-generated and universal.
EXEMPT_FLAGS = frozenset({"--help"})


def cli_surface() -> Dict[str, Set[str]]:
    """Map each ``repro`` subcommand to its long option strings.

    Walks the real parser, so a flag added to
    :func:`repro.cli._build_parser` is in scope the moment it exists.
    Short options and positionals are skipped: docs teach the long
    spelling.
    """
    from repro.cli import _build_parser

    surface: Dict[str, Set[str]] = {}
    for action in _build_parser()._actions:
        if not isinstance(action, argparse._SubParsersAction):
            continue
        for name, subparser in action.choices.items():
            flags: Set[str] = set()
            for sub_action in subparser._actions:
                for option in sub_action.option_strings:
                    if option.startswith("--") and option not in EXEMPT_FLAGS:
                        flags.add(option)
            surface[name] = flags
    return surface


def _doc_files(docs_dir: str, readme: str) -> List[str]:
    """The markdown corpus: README plus every ``.md`` under ``docs_dir``."""
    paths: List[str] = []
    if os.path.exists(readme):
        paths.append(readme)
    paths.extend(sorted(glob.glob(os.path.join(docs_dir, "*.md"))))
    return paths


def check_docs(docs_dir: str = "docs",
               readme: str = "README.md") -> List[str]:
    """Every undocumented subcommand / flag, as human-readable findings.

    Returns an empty list when the docs tree covers the full CLI
    surface.  A subcommand is documented when any corpus file contains
    ``repro <name>``; each of its flags must appear in at least one of
    *those* files (flag mentions in unrelated files don't count — see
    module docstring).
    """
    paths = _doc_files(docs_dir, readme)
    if not paths:
        return [f"docs corpus is empty ({readme!r} and {docs_dir!r}/*.md "
                "are both missing)"]
    contents: Dict[str, str] = {}
    for path in paths:
        with open(path, "r", encoding="utf-8") as handle:
            contents[path] = handle.read()

    findings: List[str] = []
    for command, flags in sorted(cli_surface().items()):
        mention = f"repro {command}"
        covering = [
            path for path, text in contents.items() if mention in text
        ]
        if not covering:
            findings.append(
                f"subcommand 'repro {command}' appears nowhere in the docs "
                f"corpus ({len(paths)} file(s) scanned)"
            )
            continue
        covering_text = "\n".join(contents[path] for path in covering)
        for flag in sorted(flags):
            if flag not in covering_text:
                findings.append(
                    f"flag '{flag}' of 'repro {command}' is undocumented "
                    f"(checked {', '.join(sorted(covering))})"
                )
    return findings
