"""Shared utilities: deterministic RNG, timing helpers, LoC accounting.

These helpers underpin the reproducibility story of the whole package:
every stochastic component (genome synthesis, read simulation, cache
trace sampling) draws from :class:`repro.util.rng.SplitMix64` streams so
results are bit-stable across platforms and Python versions.
"""

from repro.util.rng import SplitMix64, derive_seed
from repro.util.timing import RegionTimer, Stopwatch
from repro.util.loc import count_loc, loc_report

__all__ = [
    "SplitMix64",
    "derive_seed",
    "RegionTimer",
    "Stopwatch",
    "count_loc",
    "loc_report",
]
