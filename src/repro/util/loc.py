"""Line-of-code accounting for the Table I comparison.

The paper contrasts Giraffe (~50k LoC, ~350 files, ~50 dependencies)
with miniGiraffe (~1k LoC, 2 files, 3 dependencies).  In this repo the
"parent" is ``repro.giraffe`` plus every substrate it pulls in, while the
"proxy" is the small kernel surface in ``repro.core``.  These helpers
count non-blank, non-comment source lines so the comparison is honest.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, Iterable, List


def _is_code_line(line: str) -> bool:
    stripped = line.strip()
    return bool(stripped) and not stripped.startswith("#")


def count_loc(path: str) -> int:
    """Count code lines (non-blank, non-comment) in one Python file.

    Docstrings are counted as code: they are part of the shipped source
    just as comments in C++ sources were part of Giraffe's 50k figure.
    """
    with open(path, "r", encoding="utf-8") as handle:
        return sum(1 for line in handle if _is_code_line(line))


def iter_python_files(root: str) -> Iterable[str]:
    """Yield every ``.py`` file under ``root`` in sorted order."""
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames.sort()
        for name in sorted(filenames):
            if name.endswith(".py"):
                yield os.path.join(dirpath, name)


@dataclass
class LocSummary:
    """Aggregate LoC statistics for a set of source trees."""

    files: int
    lines: int
    by_file: Dict[str, int]


def loc_report(roots: List[str]) -> LocSummary:
    """Count files and code lines across one or more source trees."""
    by_file: Dict[str, int] = {}
    for root in roots:
        if os.path.isfile(root):
            by_file[root] = count_loc(root)
            continue
        for path in iter_python_files(root):
            by_file[path] = count_loc(path)
    return LocSummary(files=len(by_file), lines=sum(by_file.values()), by_file=by_file)
