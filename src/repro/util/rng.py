"""Deterministic random number generation.

Python's :mod:`random` is stable across versions for most methods, but we
want explicit, seedable, *forkable* streams so that independent subsystems
(genome synthesis, variant placement, read sampling, error injection) can
each consume randomness without perturbing one another.  ``SplitMix64`` is
a tiny, well-studied 64-bit PRNG that is trivially portable.
"""

from __future__ import annotations

import hashlib

_MASK64 = (1 << 64) - 1
_GOLDEN = 0x9E3779B97F4A7C15


def derive_seed(base_seed: int, *labels: object) -> int:
    """Derive a child seed from ``base_seed`` and a sequence of labels.

    The derivation hashes the labels so streams for different purposes
    are statistically independent, and the same (seed, labels) pair
    always produces the same child seed.

    >>> derive_seed(42, "reads") == derive_seed(42, "reads")
    True
    >>> derive_seed(42, "reads") != derive_seed(42, "variants")
    True
    """
    payload = repr((base_seed, labels)).encode("utf-8")
    digest = hashlib.sha256(payload).digest()
    return int.from_bytes(digest[:8], "little")


class SplitMix64:
    """A small deterministic PRNG with convenience draw methods.

    The generator passes through the SplitMix64 output function, which has
    full 64-bit period and excellent statistical quality for simulation
    workloads of this size.
    """

    def __init__(self, seed: int):
        self._state = seed & _MASK64

    def next_u64(self) -> int:
        """Return the next raw 64-bit output."""
        self._state = (self._state + _GOLDEN) & _MASK64
        z = self._state
        z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
        z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
        return z ^ (z >> 31)

    def random(self) -> float:
        """Return a float uniformly distributed in [0, 1)."""
        return self.next_u64() / float(1 << 64)

    def randint(self, low: int, high: int) -> int:
        """Return an integer uniformly distributed in [low, high] inclusive."""
        if high < low:
            raise ValueError(f"empty range [{low}, {high}]")
        span = high - low + 1
        return low + self.next_u64() % span

    def choice(self, seq):
        """Return a uniformly random element of a non-empty sequence."""
        if not seq:
            raise IndexError("choice from empty sequence")
        return seq[self.randint(0, len(seq) - 1)]

    def shuffle(self, items: list) -> None:
        """Fisher-Yates shuffle in place."""
        for i in range(len(items) - 1, 0, -1):
            j = self.randint(0, i)
            items[i], items[j] = items[j], items[i]

    def sample_indices(self, population: int, k: int) -> list:
        """Return ``k`` distinct indices drawn from ``range(population)``.

        Uses Floyd's algorithm so the cost is O(k) even for very large
        populations.
        """
        if k > population:
            raise ValueError(f"cannot sample {k} from population {population}")
        chosen = set()
        result = []
        for j in range(population - k, population):
            t = self.randint(0, j)
            if t in chosen:
                t = j
            chosen.add(t)
            result.append(t)
        return result

    def geometric(self, p: float) -> int:
        """Return a geometric variate (number of failures before success)."""
        if not 0.0 < p <= 1.0:
            raise ValueError(f"p must be in (0, 1], got {p}")
        count = 0
        while self.random() >= p:
            count += 1
        return count

    def fork(self, *labels: object) -> "SplitMix64":
        """Create an independent child generator labelled by ``labels``."""
        return SplitMix64(derive_seed(self._state, *labels))
