"""Wall-clock timing helpers used by the instrumentation layer.

The paper instruments Giraffe with a lightweight timestamp-collecting
header (Section III).  :class:`RegionTimer` is the Python analogue: it
records (region, thread, start, end) tuples with negligible overhead and
defers all aggregation to the end of the run.

There is one timing path: :meth:`RegionTimer.region` *delegates* span
emission to the process-global tracer (:func:`repro.obs.trace.get_tracer`),
so instrumented call sites write ``timer.region(name, worker=..., **attrs)``
once and both sinks are fed — the aggregate sample buffers here (gated
by ``enabled``) and a structured :class:`repro.obs.trace.SpanEvent`
whenever a tracer is installed (the default is the zero-cost no-op).
"""

from __future__ import annotations

import threading
import time
from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.obs import trace as obs_trace

#: The one sanctioned monotonic clock for kernel and scheduler code.
#: Kernel paths (``giraffe/``, ``gbwt/``, ``sched/``) must call
#: ``timing.now()`` instead of ``time.perf_counter`` directly — the
#: ``wallclock-in-kernel`` lint rule enforces it — so instrumentation
#: has a single seam to virtualise or stub the clock through.
now = time.perf_counter


@dataclass(frozen=True)
class RegionSample:
    """A single timed interval for one instrumented region."""

    region: str
    thread: int
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


class Stopwatch:
    """A restartable stopwatch around ``time.perf_counter``."""

    def __init__(self):
        self._start: Optional[float] = None
        self.elapsed = 0.0

    def start(self) -> "Stopwatch":
        self._start = time.perf_counter()
        return self

    def stop(self) -> float:
        if self._start is None:
            raise RuntimeError("stopwatch was not started")
        self.elapsed += time.perf_counter() - self._start
        self._start = None
        return self.elapsed

    def __enter__(self) -> "Stopwatch":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


class RegionTimer:
    """Collects per-thread timing samples for named code regions.

    Samples are buffered in per-thread lists (no locking on the hot path)
    and merged on demand, mirroring the paper's dump-at-exit design to
    avoid perturbing the measured code.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._local = threading.local()
        self._buffers: List[List[RegionSample]] = []
        self._buffers_lock = threading.Lock()
        self._thread_ids: Dict[int, int] = {}

    def _buffer(self) -> List[RegionSample]:
        buf = getattr(self._local, "buffer", None)
        if buf is None:
            buf = []
            self._local.buffer = buf
            with self._buffers_lock:
                self._buffers.append(buf)
        return buf

    def _thread_index(self) -> int:
        ident = threading.get_ident()
        with self._buffers_lock:
            if ident not in self._thread_ids:
                self._thread_ids[ident] = len(self._thread_ids)
            return self._thread_ids[ident]

    def region(self, name: str, worker: Optional[int] = None,
               **attrs) -> "_RegionContext":
        """Context manager timing one entry into region ``name``.

        ``worker`` and ``attrs`` are forwarded to the span the installed
        tracer receives (see the module docstring); they cost nothing
        when no tracer is installed.  The aggregate sample is recorded
        regardless of tracer state, but only when ``enabled`` is true.
        """
        return _RegionContext(self, name, worker, attrs)

    def record(self, name: str, start: float, end: float) -> None:
        if not self.enabled:
            return
        sample = RegionSample(name, self._thread_index(), start, end)
        self._buffer().append(sample)

    def samples(self) -> List[RegionSample]:
        """Merged samples from all threads, ordered by start time."""
        with self._buffers_lock:
            merged = [s for buf in self._buffers for s in buf]
        merged.sort(key=lambda s: s.start)
        return merged

    def totals_by_region(self) -> Dict[str, float]:
        """Aggregate duration per region across all threads."""
        totals: Dict[str, float] = defaultdict(float)
        for sample in self.samples():
            totals[sample.region] += sample.duration
        return dict(totals)

    def totals_by_thread(self) -> Dict[Tuple[int, str], float]:
        """Aggregate duration per (thread, region)."""
        totals: Dict[Tuple[int, str], float] = defaultdict(float)
        for sample in self.samples():
            totals[(sample.thread, sample.region)] += sample.duration
        return dict(totals)

    def percentages(self) -> Dict[str, float]:
        """Share of total instrumented time per region, in percent."""
        totals = self.totals_by_region()
        grand = sum(totals.values())
        if grand == 0:
            return {region: 0.0 for region in totals}
        return {region: 100.0 * t / grand for region, t in totals.items()}

    def timeline(self) -> Iterator[RegionSample]:
        """Iterate samples in chronological order (Figure 2 raw data)."""
        return iter(self.samples())

    def clear(self) -> None:
        with self._buffers_lock:
            for buf in self._buffers:
                buf.clear()


class _RegionContext:
    __slots__ = ("_timer", "_name", "_start", "_span")

    def __init__(self, timer: RegionTimer, name: str,
                 worker: Optional[int], attrs: dict):
        self._timer = timer
        self._name = name
        self._start = 0.0
        # The no-op tracer returns a shared singleton here, so the
        # disabled path stays allocation-free on the tracer side.
        self._span = obs_trace.get_tracer().span(name, worker=worker, **attrs)

    def __enter__(self) -> "_RegionContext":
        self._span.__enter__()
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self._timer.record(self._name, self._start, time.perf_counter())
        self._span.__exit__(*exc)
