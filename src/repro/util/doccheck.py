"""Docstring-coverage gate for the public API surface.

The observability layer (:mod:`repro.obs`) and the schedulers
(:mod:`repro.sched`) are documented API — ``docs/OBSERVABILITY.md``
links straight into their docstrings — so missing docstrings there are
treated as failures.  The checker is AST-based (no imports, so it can't
be fooled by import-time side effects) and is run two ways:

* as a unit test: ``tests/unit/test_docstrings.py``;
* as a command: ``python -m repro.util.doccheck src/repro/obs src/repro/sched``
  (exit code 1 when anything public is undocumented — see
  ``scripts/ci.sh``).

What counts as *public*: the module itself, plus every top-level class,
function, and method of a public class whose name does not start with
an underscore.  Dunder methods are exempt (their contracts are
language-defined); so is everything inside private (``_``-prefixed)
classes and nested scopes.
"""

from __future__ import annotations

import ast
import os
import sys
from dataclasses import dataclass
from typing import Iterable, List

from repro.util.loc import iter_python_files


@dataclass(frozen=True)
class DocIssue:
    """One undocumented public object."""

    path: str
    qualname: str
    kind: str
    lineno: int

    def describe(self) -> str:
        """Human-readable one-liner for CLI/test output."""
        return f"{self.path}:{self.lineno}: {self.kind} {self.qualname!r} has no docstring"


def _is_public(name: str) -> bool:
    return not name.startswith("_")


def _check_body(
    path: str, owner: str, body: List[ast.stmt], issues: List[DocIssue]
) -> None:
    for node in body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if not _is_public(node.name):
                continue
            qualname = f"{owner}.{node.name}" if owner else node.name
            if ast.get_docstring(node) is None:
                issues.append(DocIssue(path, qualname, "function", node.lineno))
        elif isinstance(node, ast.ClassDef):
            if not _is_public(node.name):
                continue
            qualname = f"{owner}.{node.name}" if owner else node.name
            if ast.get_docstring(node) is None:
                issues.append(DocIssue(path, qualname, "class", node.lineno))
            _check_body(path, qualname, node.body, issues)


def check_tree(path: str, tree: ast.Module) -> List[DocIssue]:
    """Docstring issues in an already-parsed module.

    The seam the unified lint front end uses (the ``missing-docstring``
    rule in :mod:`repro.qa.rules` parses each file once and hands the
    tree to every rule); :func:`check_file` wraps it for standalone use.
    """
    issues: List[DocIssue] = []
    if ast.get_docstring(tree) is None:
        issues.append(DocIssue(path, os.path.basename(path), "module", 1))
    _check_body(path, "", tree.body, issues)
    return issues


def check_file(path: str) -> List[DocIssue]:
    """Docstring issues in one Python source file."""
    with open(path, "r", encoding="utf-8") as handle:
        tree = ast.parse(handle.read(), filename=path)
    return check_tree(path, tree)


def check_paths(paths: Iterable[str]) -> List[DocIssue]:
    """Docstring issues across files and/or directory trees."""
    issues: List[DocIssue] = []
    for root in paths:
        if os.path.isfile(root):
            issues.extend(check_file(root))
        else:
            for path in iter_python_files(root):
                issues.extend(check_file(path))
    return issues


def main(argv=None) -> int:
    """CLI entry point: report issues, exit 1 if any were found."""
    paths = argv if argv is not None else sys.argv[1:]
    if not paths:
        print("usage: python -m repro.util.doccheck PATH [PATH ...]",
              file=sys.stderr)
        return 2
    issues = check_paths(paths)
    for issue in issues:
        print(issue.describe())
    if issues:
        print(f"{len(issues)} public object(s) missing docstrings")
        return 1
    print("docstring coverage: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
