"""Superbubble (snarl) decomposition of variation graphs.

Giraffe's distance index is built on a snarl decomposition: the nested
bubbles a variation graph's variant sites form.  This module detects
*superbubbles* — source/sink pairs ⟨s, t⟩ whose interior is only
reachable between s and t — on the forward-orientation DAG, using the
standard single-source search (Onodera et al.): advance a frontier from
s, only entering a node once all its predecessors are visited; when the
frontier collapses to a single node that is also the only thing seen,
that node is the bubble's sink.

Each variant the builder lays down creates one superbubble (SNPs and
insertions make two-branch bubbles; deletions make a branch-and-skip
bubble), which the tests verify.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from repro.graph.handle import forward, is_reverse, node_id
from repro.graph.variation_graph import VariationGraph


@dataclass(frozen=True)
class Superbubble:
    """One superbubble: source/sink node ids and the interior nodes."""

    source: int
    sink: int
    interior: frozenset

    @property
    def size(self) -> int:
        """Interior node count (0 for a pure deletion bubble)."""
        return len(self.interior)


def _forward_successors(graph: VariationGraph, nid: int) -> List[int]:
    return [
        node_id(h)
        for h in graph.successors(forward(nid))
        if not is_reverse(h)
    ]


def _forward_predecessors(graph: VariationGraph, nid: int) -> List[int]:
    return [
        node_id(h)
        for h in graph.predecessors(forward(nid))
        if not is_reverse(h)
    ]


def find_superbubble(graph: VariationGraph, source: int) -> Optional[Superbubble]:
    """The superbubble starting at ``source``, if one exists.

    Returns None when ``source`` does not open a bubble (fewer than two
    branches, a dead-end tip inside, or the frontier never converges).
    """
    children = _forward_successors(graph, source)
    if len(children) < 2:
        return None
    seen: Set[int] = set()
    visited: Set[int] = set()
    frontier: List[int] = [source]
    seen.add(source)
    while frontier:
        current = frontier.pop()
        visited.add(current)
        seen.discard(current)
        successors = _forward_successors(graph, current)
        if not successors:
            return None  # a tip inside the would-be bubble
        for successor in successors:
            if successor == source:
                return None  # cycle back to the source
            seen.add(successor)
            if successor not in frontier and all(
                p in visited for p in _forward_predecessors(graph, successor)
            ):
                frontier.append(successor)
        if len(frontier) == 1 and seen == {frontier[0]}:
            sink = frontier[0]
            interior = frozenset(visited - {source})
            return Superbubble(source=source, sink=sink, interior=interior)
    return None


def decompose(graph: VariationGraph) -> List[Superbubble]:
    """All superbubbles, in topological order of their sources.

    On the builder's graphs (a linear backbone with one bubble per
    variant) this yields exactly one entry per variant site.
    """
    bubbles: List[Superbubble] = []
    for nid in graph.topological_order():
        bubble = find_superbubble(graph, nid)
        if bubble is not None:
            bubbles.append(bubble)
    return bubbles


@dataclass
class SnarlStatistics:
    """Summary of a graph's bubble structure (for reports/examples)."""

    bubble_count: int
    total_interior_nodes: int
    max_interior: int
    backbone_nodes: int

    @classmethod
    def from_graph(cls, graph: VariationGraph) -> "SnarlStatistics":
        bubbles = decompose(graph)
        interiors = [b.size for b in bubbles]
        in_bubbles = set()
        for bubble in bubbles:
            in_bubbles |= bubble.interior
        return cls(
            bubble_count=len(bubbles),
            total_interior_nodes=sum(interiors),
            max_interior=max(interiors, default=0),
            backbone_nodes=graph.node_count() - len(in_bubbles),
        )
