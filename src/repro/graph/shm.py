"""Buffer-backed shared-memory storage for the read-only mapping state.

The mapping hot path consumes three immutable structures: the variation
graph (topology + node sequences), the byte-packed GBWT record pages,
and the 2-bit :class:`~repro.graph.variation_graph.PackedSequenceTable`.
Under the thread schedulers these live in ordinary Python dicts shared
for free inside one interpreter; process workers cannot share them that
way, and pickling a whole pangenome per worker per batch would drown the
kernel time.  This module flattens the working set **once** into a
single ``multiprocessing.shared_memory`` segment that any number of
worker processes attach zero-copy:

* GBWT record pages stay byte-packed exactly as :class:`repro.gbwt.gbwt.GBWT`
  stores them — a fixed-width ``(handle, offset, length)`` directory plus
  one contiguous blob.  :class:`SharedGBWT` binary-searches the
  directory and slices records out of the buffer on demand; decoding is
  deferred to :class:`repro.gbwt.cache.CachedGBWT` exactly as in the
  threaded path, so per-process caches amortize the same cost.
* The packed-sequence table is stored as the same directory+blob shape;
  :class:`SharedPackedSequenceTable` materializes individual packed
  integers lazily (memoized per process) instead of re-packing every
  node per worker.
* Graph topology (edge lists, node sequences, paths) is stored in the
  ``RVG1`` format from :mod:`repro.graph.serialize` and rebuilt once per
  attaching process — Python dict structure cannot be mapped in place,
  but the rebuild is a single linear decode with no pickling.

Read batches (the seed tables alongside their reads) travel the same
way: :class:`SharedReadBatch` frames them with the ``RSB2`` seed-file
codec into a per-run segment, so N workers share one copy of the input
instead of N pickled copies.

Lifecycle protocol: the **creator** (the proxy parent) owns the segment
and must :meth:`~SharedSegment.unlink` it (context-manager exit, a
``weakref.finalize`` safety net, or explicitly); **attachers** (worker
children) only :meth:`~SharedSegment.close` their mapping.  Because the
spawn context shares the parent's ``resource_tracker``, a SIGKILLed
worker leaks nothing: the parent's unlink removes the one and only
backing file.  Attaching an unlinked or never-created segment raises
:class:`ShmStateError` with the segment name, and :func:`active_segments`
enumerates live ``repro_shm_*`` segments so tests and the CI
``--parallel-smoke`` gate can assert leak-freedom.
"""

from __future__ import annotations

import io
import os
import struct
import weakref
from multiprocessing import shared_memory
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.core.io import ReadRecord, load_seed_file, save_seed_file
from repro.gbwt.gbwt import GBWT
from repro.gbwt.gbz import GBZ
from repro.graph.handle import Handle
from repro.graph.serialize import (
    graph_from_bytes,
    graph_to_bytes,
    read_varint,
    write_varint,
)
from repro.graph.variation_graph import (
    PackedSequenceTable,
    VariationGraph,
    pack_sequence,
)

#: Segment magic + layout version ("RSHM" v1).
MAGIC = b"RSHM"
VERSION = 1

#: Every segment this module creates is named with this prefix, which is
#: what makes leak auditing (:func:`active_segments`) possible.
SEGMENT_PREFIX = "repro_shm_"

#: Fixed-width directory entry: ``(handle, blob offset, record length)``.
_DIR_ENTRY = struct.Struct("<QQI")


class ShmStateError(RuntimeError):
    """A shared-memory segment could not be created, attached, or parsed."""


def _new_segment_name(tag: str) -> str:
    """A collision-resistant segment name carrying the creator's pid."""
    return f"{SEGMENT_PREFIX}{tag}_{os.getpid()}_{os.urandom(4).hex()}"


def active_segments(prefix: str = SEGMENT_PREFIX) -> List[str]:
    """Names of live shared-memory segments created by this module.

    Linux backs POSIX shared memory with ``/dev/shm`` files, so leak
    checks reduce to a directory listing.  On platforms without
    ``/dev/shm`` this returns an empty list (the leak gates are
    Linux-CI checks, not a portable API).
    """
    root = "/dev/shm"
    if not os.path.isdir(root):
        return []
    return sorted(
        entry for entry in os.listdir(root) if entry.startswith(prefix)
    )


# ----------------------------------------------------------------------
# section container


def _pack_sections(sections: Sequence[Tuple[str, bytes]]) -> bytes:
    """Assemble named byte sections into one self-describing buffer."""
    header = io.BytesIO()
    header.write(MAGIC)
    header.write(bytes((VERSION,)))
    write_varint(header, len(sections))
    for name, payload in sections:
        encoded = name.encode("ascii")
        write_varint(header, len(encoded))
        header.write(encoded)
        write_varint(header, len(payload))
    body = b"".join(payload for _, payload in sections)
    return header.getvalue() + body


def _parse_sections(buf: memoryview) -> Dict[str, Tuple[int, int]]:
    """Directory of ``name -> (absolute offset, length)`` for a segment.

    Only the directory is decoded; section payloads stay untouched in
    the buffer so readers can slice lazily.
    """
    stream = io.BytesIO(bytes(buf[: min(len(buf), 4096)]))
    magic = stream.read(4)
    if magic != MAGIC:
        raise ShmStateError(
            f"not a repro shared segment (magic {magic!r}, expected {MAGIC!r})"
        )
    version = stream.read(1)[0]
    if version != VERSION:
        raise ShmStateError(f"unsupported shared-segment version {version}")
    count = read_varint(stream)
    entries: List[Tuple[str, int]] = []
    for _ in range(count):
        name_len = read_varint(stream)
        name = stream.read(name_len).decode("ascii")
        length = read_varint(stream)
        entries.append((name, length))
    offset = stream.tell()
    directory: Dict[str, Tuple[int, int]] = {}
    for name, length in entries:
        directory[name] = (offset, length)
        offset += length
    if offset > len(buf):
        raise ShmStateError("shared segment directory overruns the buffer")
    return directory


def _encode_directory_blob(items: Sequence[Tuple[int, bytes]]) -> bytes:
    """Encode ``(handle, payload)`` pairs as a sorted directory + blob."""
    ordered = sorted(items)
    out = io.BytesIO()
    write_varint(out, len(ordered))
    offset = 0
    for handle, payload in ordered:
        out.write(_DIR_ENTRY.pack(handle, offset, len(payload)))
        offset += len(payload)
    for _, payload in ordered:
        out.write(payload)
    return out.getvalue()


class _DirectoryBlob:
    """Zero-copy reader for a sorted ``(handle, offset, length)`` directory.

    Lookups binary-search the fixed-width directory directly in the
    shared buffer; payload bytes are sliced out (one small copy per
    record) only when requested, so attaching costs O(1) regardless of
    index size.
    """

    def __init__(self, buf: memoryview, offset: int,
                 anchor: Optional[object] = None):
        stream = io.BytesIO(bytes(buf[offset:offset + 10]))
        self.count = read_varint(stream)
        self._dir_base = offset + stream.tell()
        self._blob_base = self._dir_base + self.count * _DIR_ENTRY.size
        self._buf = buf
        # The blob borrows ``buf`` from a SharedSegment whose finalizer
        # unmaps it on collection; holding the segment here keeps the
        # mapping alive for as long as any view can still dereference it
        # (e.g. a handler closure that captured the views but not the
        # segment object itself).
        self._anchor = anchor

    def _entry(self, index: int) -> Tuple[int, int, int]:
        return _DIR_ENTRY.unpack_from(
            self._buf, self._dir_base + index * _DIR_ENTRY.size
        )

    def find(self, handle: int) -> int:
        """Directory index of ``handle``, or ``-1`` when absent."""
        lo, hi = 0, self.count
        while lo < hi:
            mid = (lo + hi) // 2
            current = self._entry(mid)[0]
            if current < handle:
                lo = mid + 1
            elif current > handle:
                hi = mid
            else:
                return mid
        return -1

    def payload(self, index: int) -> bytes:
        """Copy out the payload bytes of directory entry ``index``."""
        _, offset, length = self._entry(index)
        start = self._blob_base + offset
        return bytes(self._buf[start:start + length])

    def handles(self) -> Iterator[int]:
        """All handles in directory (ascending) order."""
        for index in range(self.count):
            yield self._entry(index)[0]


# ----------------------------------------------------------------------
# shared views over the hot structures


class _ShmRecordMapping(Mapping[int, bytes]):
    """Read-only ``handle -> packed record`` mapping over a shared blob.

    Duck-types the ``Dict[int, bytes]`` that :class:`repro.gbwt.gbwt.GBWT`
    keeps as ``_packed``, so the whole search-state API (and
    serialization) runs unmodified against shared memory.
    """

    def __init__(self, blob: _DirectoryBlob):
        self._blob = blob

    def __getitem__(self, handle: int) -> bytes:
        index = self._blob.find(handle)
        if index < 0:
            raise KeyError(handle)
        return self._blob.payload(index)

    def __contains__(self, handle: object) -> bool:
        return isinstance(handle, int) and self._blob.find(handle) >= 0

    def get(self, handle: int, default: Optional[bytes] = None) -> Optional[bytes]:
        """Record bytes for ``handle`` or ``default`` (no KeyError cost)."""
        index = self._blob.find(handle)
        if index < 0:
            return default
        return self._blob.payload(index)

    def __iter__(self) -> Iterator[int]:
        return self._blob.handles()

    def __len__(self) -> int:
        return self._blob.count


class SharedGBWT(GBWT):
    """A :class:`~repro.gbwt.gbwt.GBWT` whose record pages live in shm.

    Behavior (search states, extraction, serialization, decode
    statistics) is inherited unchanged; only record storage differs, so
    bit-identity against the in-process index is structural rather than
    asserted.  :class:`repro.gbwt.cache.CachedGBWT` layers on top
    per process exactly as it does per thread.
    """

    def __init__(self, blob: _DirectoryBlob, sequence_count: int,
                 sequence_starts: List[Tuple[int, int]]):
        super().__init__(
            _ShmRecordMapping(blob), sequence_count,
            sequence_starts=sequence_starts,
        )


class SharedPackedSequenceTable:
    """A :class:`PackedSequenceTable` view backed by a shared blob.

    Packed integers are decoded from the buffer on first fetch and
    memoized per process — the packing work (the expensive part) was
    done once by the creator.  Handles that post-date the snapshot are
    packed on the fly without memoizing, mirroring the write-free
    contract of the in-process table.
    """

    def __init__(self, graph: VariationGraph, blob: _DirectoryBlob):
        self._graph = graph
        self._blob = blob
        self._memo: Dict[Handle, int] = {}
        #: Node count at snapshot time (staleness check for rebuilds).
        self.built_nodes = graph.node_count()

    def fetch(self, handle: Handle) -> Optional[int]:
        """Packed oriented sequence of ``handle`` (lazily memoized)."""
        packed = self._memo.get(handle)
        if packed is not None:
            return packed
        index = self._blob.find(handle)
        if index < 0:
            return pack_sequence(self._graph.sequence(handle))
        packed = int.from_bytes(self._blob.payload(index), "little")
        self._memo[handle] = packed
        return packed

    def __len__(self) -> int:
        return self._blob.count


# ----------------------------------------------------------------------
# segments


class SharedSegment:
    """One named shared-memory segment with owner/attacher lifecycle.

    The creator passes ``owner=True`` and is responsible for
    :meth:`unlink`; attachers only :meth:`close`.  Both are idempotent.
    Used as a context manager, exit closes the mapping and — for the
    owner — unlinks the backing file.
    """

    def __init__(self, shm: shared_memory.SharedMemory, owner: bool):
        self._shm = shm
        self._owner = owner
        self._closed = False
        self._unlinked = False
        if owner:
            # Safety net: an owner dropped without unlink (test failure,
            # crashed parent path that still ran atexit) must not leak
            # the segment past interpreter exit.
            self._finalizer = weakref.finalize(
                self, _cleanup_segment, shm, True
            )
        else:
            self._finalizer = weakref.finalize(
                self, _cleanup_segment, shm, False
            )

    @property
    def name(self) -> str:
        """The segment's global name (what attachers pass back in)."""
        return self._shm.name

    @property
    def size(self) -> int:
        """Mapped size in bytes."""
        return self._shm.size

    @property
    def buf(self) -> memoryview:
        """The raw mapped buffer."""
        if self._closed:
            raise ShmStateError(f"segment {self.name!r} is closed")
        return self._shm.buf

    def close(self) -> None:
        """Unmap this process's view (safe to call more than once)."""
        if not self._closed:
            self._closed = True
            if not self._owner:
                self._finalizer.detach()
            self._shm.close()

    def unlink(self) -> None:
        """Remove the backing file (owner only; idempotent)."""
        if not self._owner:
            raise ShmStateError(
                f"segment {self.name!r} is attached, not owned; "
                "only the creator may unlink"
            )
        self.close()
        if not self._unlinked:
            self._unlinked = True
            self._finalizer.detach()
            try:
                self._shm.unlink()
            except FileNotFoundError:
                pass  # already removed (e.g. by an external cleanup)

    def __enter__(self) -> "SharedSegment":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._owner:
            self.unlink()
        else:
            self.close()


def _cleanup_segment(shm: shared_memory.SharedMemory, owner: bool) -> None:
    """``weakref.finalize`` callback: close (and unlink for owners)."""
    try:
        shm.close()
        if owner:
            shm.unlink()
    except (FileNotFoundError, OSError):
        pass  # already gone; nothing left to leak


def _create_segment(payload: bytes, tag: str,
                    name: Optional[str] = None) -> shared_memory.SharedMemory:
    """Allocate a named segment and copy ``payload`` into it."""
    segment_name = name if name is not None else _new_segment_name(tag)
    try:
        shm = shared_memory.SharedMemory(
            name=segment_name, create=True, size=max(1, len(payload))
        )
    except FileExistsError as error:
        raise ShmStateError(
            f"shared segment {segment_name!r} already exists"
        ) from error
    shm.buf[: len(payload)] = payload
    return shm


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach an existing segment; missing names become ShmStateError."""
    try:
        return shared_memory.SharedMemory(name=name)
    except FileNotFoundError as error:
        raise ShmStateError(
            f"shared segment {name!r} does not exist "
            "(never created, or already unlinked by its owner)"
        ) from error


def _encode_packed_table(table: PackedSequenceTable) -> bytes:
    """Serialize a packed-sequence table as directory + integer blob."""
    items: List[Tuple[int, bytes]] = []
    for handle, packed in table.items():
        if packed is None:
            continue  # non-ACGT payloads repack on the fly at fetch time
        size = (packed.bit_length() + 7) // 8
        items.append((handle, packed.to_bytes(size, "little")))
    return _encode_directory_blob(items)


def _encode_gbwt(gbwt: GBWT) -> bytes:
    """Serialize GBWT metadata + record pages as directory + blob."""
    head = io.BytesIO()
    write_varint(head, gbwt.sequence_count)
    write_varint(head, len(gbwt.sequence_starts))
    for node, offset in gbwt.sequence_starts:
        write_varint(head, node)
        write_varint(head, offset)
    records = _encode_directory_blob(
        [(handle, gbwt.record_bytes(handle)) for handle in gbwt.handles()]
    )
    return head.getvalue() + records


class SharedMappingState(SharedSegment):
    """The whole read-only mapping working set in one shared segment.

    Created once by the proxy parent from a loaded :class:`GBZ`;
    attached by each worker process via :meth:`attach`.  :meth:`gbz`
    materializes the worker-side view: graph topology rebuilt from the
    ``RVG1`` section, packed sequences and GBWT record pages served
    zero-copy straight from the buffer.
    """

    def __init__(self, shm: shared_memory.SharedMemory, owner: bool):
        super().__init__(shm, owner)
        self._directory = _parse_sections(self._shm.buf)
        self._gbz: Optional[GBZ] = None

    @classmethod
    def create(cls, gbz: GBZ, name: Optional[str] = None) -> "SharedMappingState":
        """Flatten ``gbz`` into a fresh owned segment."""
        payload = _pack_sections([
            ("graph", graph_to_bytes(gbz.graph)),
            ("pseq", _encode_packed_table(gbz.graph.packed_sequences())),
            ("gbwt", _encode_gbwt(gbz.gbwt)),
        ])
        return cls(_create_segment(payload, "graph", name=name), owner=True)

    @classmethod
    def attach(cls, name: str) -> "SharedMappingState":
        """Attach an existing mapping-state segment by name."""
        return cls(_attach_segment(name), owner=False)

    def _section(self, name: str) -> Tuple[int, int]:
        try:
            return self._directory[name]
        except KeyError:
            raise ShmStateError(
                f"segment {self.name!r} has no {name!r} section"
            ) from None

    def gbz(self) -> GBZ:
        """The shared-view :class:`GBZ` (built once per attachment).

        The returned graph carries a :class:`SharedPackedSequenceTable`
        adopted in place of an eagerly packed one, and the GBWT is a
        :class:`SharedGBWT` slicing record pages out of this segment.
        """
        if self._gbz is None:
            buf = self.buf
            graph_off, graph_len = self._section("graph")
            graph = graph_from_bytes(bytes(buf[graph_off:graph_off + graph_len]))
            pseq_off, _ = self._section("pseq")
            graph.adopt_packed_table(
                SharedPackedSequenceTable(
                    graph, _DirectoryBlob(buf, pseq_off, anchor=self)
                )
            )
            gbwt_off, gbwt_len = self._section("gbwt")
            stream = io.BytesIO(
                bytes(buf[gbwt_off:min(gbwt_off + gbwt_len, gbwt_off + 4096)])
            )
            sequence_count = read_varint(stream)
            start_count = read_varint(stream)
            starts = [
                (read_varint(stream), read_varint(stream))
                for _ in range(start_count)
            ]
            records = _DirectoryBlob(
                buf, gbwt_off + stream.tell(), anchor=self
            )
            self._gbz = GBZ(
                graph=graph,
                gbwt=SharedGBWT(records, sequence_count, starts),
            )
        return self._gbz

    def close(self) -> None:
        """Unmap, dropping the materialized view first."""
        self._gbz = None
        super().close()


class SharedReadBatch(SharedSegment):
    """One run's read records (with seeds) in a shared segment.

    The creator frames the records with the ``RSB2`` seed-file codec;
    attachers decode them once per segment.  This is the per-run
    companion to the long-lived :class:`SharedMappingState`.
    """

    def __init__(self, shm: shared_memory.SharedMemory, owner: bool):
        super().__init__(shm, owner)
        self._directory = _parse_sections(self._shm.buf)
        self._records: Optional[List[ReadRecord]] = None

    @classmethod
    def create(cls, records: Sequence[ReadRecord],
               name: Optional[str] = None) -> "SharedReadBatch":
        """Frame ``records`` into a fresh owned segment."""
        body = io.BytesIO()
        save_seed_file(list(records), body, framed=True)
        payload = _pack_sections([("reads", body.getvalue())])
        return cls(_create_segment(payload, "reads", name=name), owner=True)

    @classmethod
    def attach(cls, name: str) -> "SharedReadBatch":
        """Attach an existing read-batch segment by name."""
        return cls(_attach_segment(name), owner=False)

    def records(self) -> List[ReadRecord]:
        """Decode (once) and return the framed read records."""
        if self._records is None:
            try:
                offset, length = self._directory["reads"]
            except KeyError:
                raise ShmStateError(
                    f"segment {self.name!r} has no 'reads' section"
                ) from None
            stream = io.BytesIO(bytes(self.buf[offset:offset + length]))
            self._records = load_seed_file(stream)
        return self._records

    def close(self) -> None:
        """Unmap, dropping the decoded records first."""
        self._records = None
        super().close()
