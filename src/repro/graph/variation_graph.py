"""The in-memory bidirected variation graph with embedded paths.

This is the central substrate every other subsystem consumes: the GBWT
indexes its paths, the minimizer index scans its node sequences, the
distance index walks its topology, and the extension kernel traverses it
while comparing read bases against node bases.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.graph.handle import (
    Handle,
    flip,
    forward,
    is_reverse,
    node_id,
    reverse_complement,
)

_VALID_BASES = frozenset("ACGT")

#: 2-bit base codes chosen so that complementing is ``code ^ 3``
#: (A=00 ↔ T=11, C=01 ↔ G=10) — the property the packed
#: reverse-complement construction relies on.
BASE_CODES = {"A": 0, "C": 1, "G": 2, "T": 3}


def pack_sequence(sequence: str) -> Optional[int]:
    """2-bit-pack a DNA string into one integer (base ``i`` at bits 2i).

    Returns None when the sequence contains anything outside uppercase
    ACGT — callers fall back to per-character comparison for such
    inputs.  The empty string packs to 0.
    """
    packed = 0
    codes = BASE_CODES
    try:
        for ch in reversed(sequence):
            packed = (packed << 2) | codes[ch]
    except KeyError:
        return None
    return packed


class PackedSequenceTable:
    """Immutable 2-bit packed node sequences, keyed by oriented handle.

    The extension kernel's inner loop compares read bases against node
    bases; with both sides packed two bits per base, a whole
    node-vs-read overlap collapses to one XOR plus a lowest-set-bit
    scan (:mod:`repro.core.extend`).  The table is built **once, at
    load time, by a single thread** — both orientations of every node
    are packed eagerly — and is strictly read-only afterwards, so
    worker threads share it without locks (``repro races`` audits the
    proxy with this table watched; an unsynchronized post-build write
    would be flagged).

    Handles added to the graph *after* the table was built are served
    by packing on the fly without memoizing (no post-build writes);
    :meth:`VariationGraph.packed_sequences` rebuilds the table when it
    notices new nodes.
    """

    def __init__(self, graph: "VariationGraph"):
        packed: Dict[Handle, int] = {}
        for nid in graph.node_ids():
            fwd = forward(nid)
            sequence = graph.sequence(fwd)
            packed[fwd] = pack_sequence(sequence)
            packed[flip(fwd)] = pack_sequence(reverse_complement(sequence))
        self._graph = graph
        self._packed = packed
        #: Node count at build time (staleness check for rebuilds).
        self.built_nodes = graph.node_count()

    def fetch(self, handle: Handle) -> int:
        """Packed oriented sequence of ``handle`` (memoized at build).

        Unknown handles (nodes added after the build) are packed on the
        fly and **not** cached, keeping the table write-free after
        construction.
        """
        packed = self._packed.get(handle)
        if packed is None:
            return pack_sequence(self._graph.sequence(handle))
        return packed

    def __len__(self) -> int:
        return len(self._packed)

    def items(self) -> Iterable[Tuple[Handle, Optional[int]]]:
        """Read-only view of ``(handle, packed)`` pairs (both orientations).

        Exists so exporters (:mod:`repro.graph.shm`) can snapshot the
        table without touching its internals.
        """
        return self._packed.items()


@dataclass
class Path:
    """A named walk through the graph (a haplotype or reference path)."""

    name: str
    handles: List[Handle] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.handles)

    def __iter__(self) -> Iterator[Handle]:
        return iter(self.handles)


class VariationGraph:
    """A bidirected sequence graph with named paths.

    Nodes carry DNA sequences and are addressed by positive integer ids.
    Edges connect oriented node ends; an edge (a, b) means "after reading
    handle a you may read handle b", and implies the symmetric traversal
    (flip(b), flip(a)).
    """

    def __init__(self):
        self._sequences: Dict[int, str] = {}
        self._edges_out: Dict[Handle, List[Handle]] = {}
        self.paths: Dict[str, Path] = {}
        self._next_id = 1
        self._packed_table: Optional[PackedSequenceTable] = None

    def packed_sequences(self) -> PackedSequenceTable:
        """The packed-sequence side table, (re)built when nodes changed.

        Build happens lazily on first use and again whenever the node
        count moved; callers that share a graph across worker threads
        (the proxy, the parent mapper) invoke this once during
        single-threaded setup so workers only ever *read* the table.
        Concurrent first calls would each build an identical immutable
        table and benignly race on which one is kept.
        """
        table = self._packed_table
        if table is None or table.built_nodes != self.node_count():
            table = PackedSequenceTable(self)
            self._packed_table = table
        return table

    def adopt_packed_table(self, table) -> None:
        """Install an externally built packed-sequence table.

        Used by the shared-memory layer (:mod:`repro.graph.shm`) to
        substitute a buffer-backed table for the eagerly packed one.
        The adopted table must duck-type :class:`PackedSequenceTable`
        (``fetch``/``__len__``/``built_nodes``); the usual staleness
        rule still applies — if nodes are added afterwards,
        :meth:`packed_sequences` rebuilds an in-process table.
        """
        self._packed_table = table

    # -- node operations ------------------------------------------------

    def add_node(self, sequence: str, nid: Optional[int] = None) -> int:
        """Add a node; returns its id.  Sequences must be non-empty ACGT."""
        if not sequence:
            raise ValueError("node sequence must be non-empty")
        bad = set(sequence) - _VALID_BASES
        if bad:
            raise ValueError(f"invalid bases in node sequence: {sorted(bad)}")
        if nid is None:
            nid = self._next_id
        elif nid in self._sequences:
            raise ValueError(f"node {nid} already exists")
        self._sequences[nid] = sequence
        self._next_id = max(self._next_id, nid + 1)
        return nid

    def has_node(self, nid: int) -> bool:
        return nid in self._sequences

    def node_count(self) -> int:
        return len(self._sequences)

    def node_ids(self) -> Iterable[int]:
        return self._sequences.keys()

    def node_length(self, nid: int) -> int:
        return len(self._sequences[nid])

    def sequence(self, handle: Handle) -> str:
        """Sequence read along ``handle`` (reverse-complemented if flipped)."""
        seq = self._sequences[node_id(handle)]
        if is_reverse(handle):
            return reverse_complement(seq)
        return seq

    def base(self, handle: Handle, offset: int) -> str:
        """Single base at ``offset`` along the oriented node.

        This is the hot call of the extension kernel; it avoids building
        the reverse-complement string for reverse handles.
        """
        seq = self._sequences[node_id(handle)]
        if is_reverse(handle):
            ch = seq[len(seq) - 1 - offset]
            return reverse_complement(ch)
        return seq[offset]

    # -- edge operations ------------------------------------------------

    def add_edge(self, src: Handle, dst: Handle) -> None:
        """Add the directed traversal src→dst and its symmetric twin."""
        for nid in (node_id(src), node_id(dst)):
            if nid not in self._sequences:
                raise ValueError(f"edge references missing node {nid}")
        if dst not in self._edges_out.setdefault(src, []):
            self._edges_out[src].append(dst)
        twin_src, twin_dst = flip(dst), flip(src)
        if twin_dst not in self._edges_out.setdefault(twin_src, []):
            self._edges_out[twin_src].append(twin_dst)

    def successors(self, handle: Handle) -> List[Handle]:
        """Handles reachable immediately after reading ``handle``."""
        return self._edges_out.get(handle, [])

    def predecessors(self, handle: Handle) -> List[Handle]:
        """Handles that can immediately precede ``handle``."""
        return [flip(h) for h in self._edges_out.get(flip(handle), [])]

    def has_edge(self, src: Handle, dst: Handle) -> bool:
        return dst in self._edges_out.get(src, [])

    def edge_count(self) -> int:
        # Each edge is stored twice (once per direction); self-symmetric
        # edges (h -> flip(h)) are stored once.
        total = sum(len(v) for v in self._edges_out.values())
        symmetric = sum(
            1
            for src, dsts in self._edges_out.items()
            for dst in dsts
            if (flip(dst), flip(src)) == (src, dst)
        )
        return (total + symmetric) // 2

    def edges(self) -> Iterator[Tuple[Handle, Handle]]:
        """Iterate each edge once, in canonical orientation."""
        seen: Set[Tuple[Handle, Handle]] = set()
        for src in sorted(self._edges_out):
            for dst in self._edges_out[src]:
                twin = (flip(dst), flip(src))
                if twin in seen:
                    continue
                seen.add((src, dst))
                yield src, dst

    # -- path operations ------------------------------------------------

    def add_path(self, name: str, handles: List[Handle]) -> Path:
        """Embed a walk; validates that consecutive handles are connected."""
        if name in self.paths:
            raise ValueError(f"path {name!r} already exists")
        for handle in handles:
            if node_id(handle) not in self._sequences:
                raise ValueError(f"path visits missing node {node_id(handle)}")
        for prev, nxt in zip(handles, handles[1:]):
            if not self.has_edge(prev, nxt):
                raise ValueError(
                    f"path {name!r} uses missing edge {prev}->{nxt}"
                )
        path = Path(name, list(handles))
        self.paths[name] = path
        return path

    def path_sequence(self, name: str) -> str:
        """Concatenated sequence spelled by a path."""
        return "".join(self.sequence(h) for h in self.paths[name].handles)

    def path_length(self, name: str) -> int:
        return sum(self.node_length(node_id(h)) for h in self.paths[name].handles)

    # -- whole-graph helpers ---------------------------------------------

    def total_sequence_length(self) -> int:
        return sum(len(s) for s in self._sequences.values())

    def topological_order(self) -> List[int]:
        """Node ids in a forward topological order.

        Our builder produces DAG-shaped graphs in the forward orientation
        (bubbles over a linear backbone), which is what this method
        assumes; it raises if a forward cycle exists.
        """
        indegree: Dict[int, int] = {nid: 0 for nid in self._sequences}
        adjacency: Dict[int, List[int]] = {nid: [] for nid in self._sequences}
        for src, dsts in self._edges_out.items():
            if is_reverse(src):
                continue
            for dst in dsts:
                if is_reverse(dst):
                    continue
                adjacency[node_id(src)].append(node_id(dst))
                indegree[node_id(dst)] += 1
        ready = sorted(nid for nid, deg in indegree.items() if deg == 0)
        order: List[int] = []
        while ready:
            nid = ready.pop(0)
            order.append(nid)
            inserted = False
            for succ in adjacency[nid]:
                indegree[succ] -= 1
                if indegree[succ] == 0:
                    ready.append(succ)
                    inserted = True
            if inserted:
                ready.sort()
        if len(order) != len(self._sequences):
            raise ValueError("graph has a forward cycle; no topological order")
        return order

    def validate(self) -> None:
        """Check structural invariants; raises ``ValueError`` on violation."""
        for src, dsts in self._edges_out.items():
            if node_id(src) not in self._sequences:
                raise ValueError(f"edge from missing node {node_id(src)}")
            for dst in dsts:
                if node_id(dst) not in self._sequences:
                    raise ValueError(f"edge to missing node {node_id(dst)}")
                twin = self._edges_out.get(flip(dst), [])
                if flip(src) not in twin:
                    raise ValueError(f"edge {src}->{dst} missing its twin")
        for name, path in self.paths.items():
            for prev, nxt in zip(path.handles, path.handles[1:]):
                if not self.has_edge(prev, nxt):
                    raise ValueError(f"path {name!r} broken at {prev}->{nxt}")

    def describe(self) -> str:
        """One-line summary for logs and examples."""
        return (
            f"VariationGraph(nodes={self.node_count()}, "
            f"edges={self.edge_count()}, paths={len(self.paths)}, "
            f"bases={self.total_sequence_length()})"
        )
