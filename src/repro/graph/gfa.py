"""GFA 1.0 interchange for variation graphs.

GFA (Graphical Fragment Assembly) is the lingua franca of pangenome
tooling — vg, odgi, and the HPRC pipelines all exchange graphs as GFA.
We implement the subset variation graphs need: ``S`` (segment), ``L``
(link, always 0M overlap for node graphs), and ``P`` (path) lines, with
orientation signs mapping onto our handle convention.
"""

from __future__ import annotations

from typing import Iterable, List, TextIO

from repro.graph.handle import Handle, is_reverse, node_id, pack_handle
from repro.graph.variation_graph import VariationGraph

_HEADER = "H\tVN:Z:1.0"


def _orientation(handle: Handle) -> str:
    return "-" if is_reverse(handle) else "+"


def _segment_ref(handle: Handle) -> str:
    return f"{node_id(handle)}{_orientation(handle)}"


def write_gfa(graph: VariationGraph, stream: TextIO) -> None:
    """Serialize a variation graph as GFA 1.0 (S, L, and P lines)."""
    stream.write(_HEADER + "\n")
    for nid in sorted(graph.node_ids()):
        stream.write(f"S\t{nid}\t{graph.sequence(nid << 1)}\n")
    for src, dst in graph.edges():
        stream.write(
            "L\t{}\t{}\t{}\t{}\t0M\n".format(
                node_id(src), _orientation(src), node_id(dst), _orientation(dst)
            )
        )
    for name in sorted(graph.paths):
        steps = ",".join(_segment_ref(h) for h in graph.paths[name].handles)
        stream.write(f"P\t{name}\t{steps}\t*\n")


def _parse_step(step: str) -> Handle:
    if not step or step[-1] not in "+-":
        raise ValueError(f"malformed GFA path step {step!r}")
    return pack_handle(int(step[:-1]), step[-1] == "-")


def read_gfa(stream: TextIO) -> VariationGraph:
    """Parse GFA 1.0 produced by :func:`write_gfa` (or compatible).

    Unknown record types are ignored, as the spec requires.  Links and
    paths may reference segments defined later in the file, so edges and
    paths are applied after all segments are read.
    """
    graph = VariationGraph()
    links: List[tuple] = []
    paths: List[tuple] = []
    for line_number, line in enumerate(stream, start=1):
        line = line.rstrip("\n")
        if not line or line.startswith("#"):
            continue
        fields = line.split("\t")
        kind = fields[0]
        if kind == "S":
            if len(fields) < 3:
                raise ValueError(f"line {line_number}: malformed S line")
            graph.add_node(fields[2], nid=int(fields[1]))
        elif kind == "L":
            if len(fields) < 6:
                raise ValueError(f"line {line_number}: malformed L line")
            src = pack_handle(int(fields[1]), fields[2] == "-")
            dst = pack_handle(int(fields[3]), fields[4] == "-")
            links.append((src, dst))
        elif kind == "P":
            if len(fields) < 3:
                raise ValueError(f"line {line_number}: malformed P line")
            steps = [_parse_step(s) for s in fields[2].split(",") if s]
            paths.append((fields[1], steps))
        # H and anything else: ignored.
    for src, dst in links:
        graph.add_edge(src, dst)
    for name, steps in paths:
        graph.add_path(name, steps)
    return graph


def write_gfa_file(graph: VariationGraph, path: str) -> None:
    with open(path, "w") as handle:
        write_gfa(graph, handle)


def read_gfa_file(path: str) -> VariationGraph:
    with open(path) as handle:
        return read_gfa(handle)
