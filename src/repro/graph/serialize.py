"""Binary round-trip serialization for variation graphs.

A compact little-endian format with varint-packed integers, used both on
its own and as the graph section inside the GBZ container
(:mod:`repro.gbwt.gbz`).  2-bit packing of DNA keeps files small without
external compression.
"""

from __future__ import annotations

import io
import struct
from typing import BinaryIO, List

from repro.graph.variation_graph import VariationGraph

MAGIC = b"RVG1"
_BASE_TO_BITS = {"A": 0, "C": 1, "G": 2, "T": 3}
_BITS_TO_BASE = "ACGT"


def write_varint(stream: BinaryIO, value: int) -> None:
    """LEB128 unsigned varint."""
    if value < 0:
        raise ValueError("varints are unsigned")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            stream.write(bytes((byte | 0x80,)))
        else:
            stream.write(bytes((byte,)))
            return


def read_varint(stream: BinaryIO) -> int:
    """Read one LEB128 unsigned varint."""
    shift = 0
    result = 0
    while True:
        raw = stream.read(1)
        if not raw:
            raise EOFError("truncated varint")
        byte = raw[0]
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result
        shift += 7
        if shift > 63:
            raise ValueError("varint too long")


def pack_dna(sequence: str) -> bytes:
    """2-bit pack a DNA string (length stored separately)."""
    packed = bytearray((len(sequence) + 3) // 4)
    for i, base in enumerate(sequence):
        packed[i >> 2] |= _BASE_TO_BITS[base] << ((i & 3) << 1)
    return bytes(packed)


def unpack_dna(packed: bytes, length: int) -> str:
    """Invert :func:`pack_dna`."""
    bases: List[str] = []
    for i in range(length):
        bits = (packed[i >> 2] >> ((i & 3) << 1)) & 3
        bases.append(_BITS_TO_BASE[bits])
    return "".join(bases)


def save_graph(graph: VariationGraph, stream: BinaryIO) -> None:
    """Serialize ``graph`` (nodes, edges, paths) to a binary stream."""
    stream.write(MAGIC)
    node_ids = sorted(graph.node_ids())
    write_varint(stream, len(node_ids))
    for nid in node_ids:
        seq = graph.sequence(nid << 1)
        write_varint(stream, nid)
        write_varint(stream, len(seq))
        stream.write(pack_dna(seq))
    edges = list(graph.edges())
    write_varint(stream, len(edges))
    for src, dst in edges:
        write_varint(stream, src)
        write_varint(stream, dst)
    write_varint(stream, len(graph.paths))
    for name in sorted(graph.paths):
        encoded = name.encode("utf-8")
        write_varint(stream, len(encoded))
        stream.write(encoded)
        handles = graph.paths[name].handles
        write_varint(stream, len(handles))
        for handle in handles:
            write_varint(stream, handle)


def load_graph(stream: BinaryIO) -> VariationGraph:
    """Inverse of :func:`save_graph`."""
    magic = stream.read(4)
    if magic != MAGIC:
        raise ValueError(f"bad graph magic {magic!r}")
    graph = VariationGraph()
    node_count = read_varint(stream)
    for _ in range(node_count):
        nid = read_varint(stream)
        length = read_varint(stream)
        packed = stream.read((length + 3) // 4)
        graph.add_node(unpack_dna(packed, length), nid=nid)
    edge_count = read_varint(stream)
    for _ in range(edge_count):
        src = read_varint(stream)
        dst = read_varint(stream)
        graph.add_edge(src, dst)
    path_count = read_varint(stream)
    for _ in range(path_count):
        name_len = read_varint(stream)
        name = stream.read(name_len).decode("utf-8")
        handle_count = read_varint(stream)
        handles = [read_varint(stream) for _ in range(handle_count)]
        graph.add_path(name, handles)
    return graph


def graph_to_bytes(graph: VariationGraph) -> bytes:
    """Convenience wrapper returning the serialized bytes."""
    buffer = io.BytesIO()
    save_graph(graph, buffer)
    return buffer.getvalue()


def graph_from_bytes(data: bytes) -> VariationGraph:
    """Convenience wrapper decoding serialized bytes."""
    return load_graph(io.BytesIO(data))
