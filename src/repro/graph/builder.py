"""Construct variation graphs from a linear reference plus variants.

This mirrors how real pangenomes are produced (``vg construct`` over a
FASTA + VCF): the reference is split into segment nodes at variant
breakpoints, each variant contributes an alternate branch (a *bubble*),
and haplotypes are embedded as paths that pick one branch per bubble.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.graph.handle import Handle, forward
from repro.graph.variation_graph import VariationGraph

_VALID_BASES = frozenset("ACGT")


@dataclass(frozen=True)
class Variant:
    """A VCF-style variant against the linear reference.

    ``position`` is 0-based.  ``ref`` is the replaced reference substring
    (empty for a pure insertion); ``alt`` is the replacement (empty for a
    pure deletion).  SNP: len(ref) == len(alt) == 1.
    """

    position: int
    ref: str
    alt: str

    def __post_init__(self):
        if self.position < 0:
            raise ValueError("variant position must be non-negative")
        if not self.ref and not self.alt:
            raise ValueError("variant must change something")
        for allele in (self.ref, self.alt):
            bad = set(allele) - _VALID_BASES
            if bad:
                raise ValueError(f"invalid bases in allele: {sorted(bad)}")

    @property
    def end(self) -> int:
        """Reference position one past the replaced span."""
        return self.position + len(self.ref)

    @property
    def kind(self) -> str:
        if len(self.ref) == 1 and len(self.alt) == 1:
            return "snp"
        if not self.ref:
            return "insertion"
        if not self.alt:
            return "deletion"
        return "replacement"


class GraphBuilder:
    """Builds a :class:`VariationGraph` and exposes haplotype threading.

    Parameters
    ----------
    reference:
        The backbone DNA string.
    variants:
        Non-overlapping variants sorted (or sortable) by position.
    max_node_length:
        Reference segments longer than this are chunked into multiple
        nodes, as ``vg construct`` does, keeping node sequences short so
        graph traversal granularity matches the real tool.
    """

    def __init__(
        self,
        reference: str,
        variants: Sequence[Variant],
        max_node_length: int = 32,
    ):
        if not reference:
            raise ValueError("reference must be non-empty")
        if max_node_length < 1:
            raise ValueError("max_node_length must be positive")
        self.reference = reference
        self.max_node_length = max_node_length
        self.variants = sorted(variants, key=lambda v: (v.position, v.end))
        self._check_variants()
        self.graph = VariationGraph()
        # Per reference segment: (start, end, [handles]).
        self._segments: List[Tuple[int, int, List[Handle]]] = []
        # Per variant index: list of alt handles (empty for deletions).
        self._alt_handles: Dict[int, List[Handle]] = {}
        self._build()

    # -- validation -------------------------------------------------------

    def _check_variants(self) -> None:
        previous_end = -1
        for variant in self.variants:
            if variant.end > len(self.reference):
                raise ValueError(
                    f"variant at {variant.position} extends past reference end"
                )
            if variant.ref and self.reference[variant.position : variant.end] != variant.ref:
                raise ValueError(
                    f"variant at {variant.position} ref allele does not match reference"
                )
            if variant.position < previous_end:
                raise ValueError(
                    f"variant at {variant.position} overlaps the previous variant"
                )
            # Insertions at the same point as a previous variant end are
            # fine, but two insertions at one point are ambiguous.
            if variant.position == previous_end and not variant.ref:
                previous_end = variant.position
            previous_end = max(previous_end, variant.end)

    # -- construction -----------------------------------------------------

    def _chunk(self, start: int, end: int) -> List[Handle]:
        """Create chained ref nodes covering reference [start, end)."""
        handles: List[Handle] = []
        pos = start
        while pos < end:
            stop = min(pos + self.max_node_length, end)
            nid = self.graph.add_node(self.reference[pos:stop])
            handles.append(forward(nid))
            pos = stop
        for prev, nxt in zip(handles, handles[1:]):
            self.graph.add_edge(prev, nxt)
        return handles

    def _build(self) -> None:
        breakpoints = {0, len(self.reference)}
        for variant in self.variants:
            breakpoints.add(variant.position)
            breakpoints.add(variant.end)
        ordered = sorted(breakpoints)
        for start, end in zip(ordered, ordered[1:]):
            if start < end:
                self._segments.append((start, end, self._chunk(start, end)))
        # Connect consecutive reference segments.
        for (s0, e0, left), (s1, e1, right) in zip(self._segments, self._segments[1:]):
            if e0 == s1 and left and right:
                self.graph.add_edge(left[-1], right[0])
        # Add alternate branches.
        for index, variant in enumerate(self.variants):
            self._add_variant(index, variant)

    def _segment_before(self, position: int) -> Optional[List[Handle]]:
        for start, end, handles in self._segments:
            if end == position:
                return handles
        return None

    def _segment_at(self, position: int) -> Optional[List[Handle]]:
        for start, end, handles in self._segments:
            if start == position:
                return handles
        return None

    def _add_variant(self, index: int, variant: Variant) -> None:
        left = self._segment_before(variant.position)
        right = self._segment_at(variant.end)
        alt_handles: List[Handle] = []
        if variant.alt:
            pos = 0
            while pos < len(variant.alt):
                stop = min(pos + self.max_node_length, len(variant.alt))
                nid = self.graph.add_node(variant.alt[pos:stop])
                alt_handles.append(forward(nid))
                pos = stop
            for prev, nxt in zip(alt_handles, alt_handles[1:]):
                self.graph.add_edge(prev, nxt)
        self._alt_handles[index] = alt_handles
        if alt_handles:
            if left is not None:
                self.graph.add_edge(left[-1], alt_handles[0])
            if right is not None:
                self.graph.add_edge(alt_handles[-1], right[0])
        else:
            # Pure deletion: an edge that skips the deleted ref segment.
            if left is not None and right is not None:
                self.graph.add_edge(left[-1], right[0])

    # -- haplotype threading ------------------------------------------------

    def reference_walk(self) -> List[Handle]:
        """The walk spelling the unmodified reference."""
        walk: List[Handle] = []
        for _, _, handles in self._segments:
            walk.extend(handles)
        return walk

    def haplotype_walk(self, chosen: Sequence[int]) -> List[Handle]:
        """Walk for a haplotype that takes the alt allele of each variant
        index in ``chosen`` and the reference allele everywhere else."""
        chosen_set = set(chosen)
        for index in chosen_set:
            if not 0 <= index < len(self.variants):
                raise ValueError(f"unknown variant index {index}")
        walk: List[Handle] = []
        variant_spans = {
            (v.position, v.end): i for i, v in enumerate(self.variants)
        }
        skip_until = -1
        for start, end, handles in self._segments:
            # Emit any chosen insertion branch anchored at this boundary.
            for index in self._insertions_at(start):
                if index in chosen_set:
                    walk.extend(self._alt_handles[index])
            if start < skip_until:
                continue
            span_index = variant_spans.get((start, end))
            if span_index is not None and span_index in chosen_set:
                walk.extend(self._alt_handles[span_index])
                skip_until = end
                continue
            walk.extend(handles)
        # Insertions at the very end of the reference.
        for index in self._insertions_at(len(self.reference)):
            if index in chosen_set:
                walk.extend(self._alt_handles[index])
        return walk

    def _insertions_at(self, position: int) -> List[int]:
        return [
            i
            for i, v in enumerate(self.variants)
            if not v.ref and v.position == position
        ]

    def embed_haplotypes(self, selections: Dict[str, Sequence[int]]) -> None:
        """Add one named path per haplotype selection."""
        for name, chosen in selections.items():
            self.graph.add_path(name, self.haplotype_walk(chosen))

    def haplotype_sequence(self, chosen: Sequence[int]) -> str:
        """Sequence spelled by :meth:`haplotype_walk` (for verification)."""
        return "".join(self.graph.sequence(h) for h in self.haplotype_walk(chosen))
