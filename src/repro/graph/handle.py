"""Handles: oriented references to graph nodes.

The VG toolkit addresses every node through a *handle* that packs the
node id together with an orientation bit; traversing a node backwards
means reading its reverse complement.  We keep the same idiom with plain
integers — handle = (node_id << 1) | is_reverse — because handles are
stored by the million inside seeds, GBWT records, and extension paths,
and small ints are the cheapest hashable value Python has.
"""

from __future__ import annotations

Handle = int

_COMPLEMENT = str.maketrans("ACGTacgt", "TGCAtgca")


def forward(nid: int) -> Handle:
    """Handle for node ``nid`` in forward orientation."""
    return nid << 1


def reverse(nid: int) -> Handle:
    """Handle for node ``nid`` in reverse orientation."""
    return (nid << 1) | 1


def flip(handle: Handle) -> Handle:
    """Return the same node in the opposite orientation."""
    return handle ^ 1


def node_id(handle: Handle) -> int:
    """Extract the node id from a handle."""
    return handle >> 1


def is_reverse(handle: Handle) -> bool:
    """True if the handle reads the node's reverse complement."""
    return bool(handle & 1)


def pack_handle(nid: int, rev: bool) -> Handle:
    """Build a handle from explicit (node id, orientation)."""
    return (nid << 1) | int(rev)


def unpack_handle(handle: Handle) -> tuple:
    """Return ``(node_id, is_reverse)`` for a handle."""
    return handle >> 1, bool(handle & 1)


def reverse_complement(sequence: str) -> str:
    """Reverse complement of a DNA string (case preserved)."""
    return sequence.translate(_COMPLEMENT)[::-1]
