"""Variation-graph substrate.

A variation graph (VG) stores a population of genomes as a bidirected
sequence graph: nodes carry DNA segments, edges connect node *sides*, and
haplotypes are walks through the graph.  This package provides:

* :mod:`repro.graph.handle` — the (node id, orientation) handle idiom the
  VG toolkit uses everywhere;
* :mod:`repro.graph.variation_graph` — the in-memory graph with paths;
* :mod:`repro.graph.builder` — construction from a linear reference plus
  a variant list (SNPs, indels, alternate alleles);
* :mod:`repro.graph.serialize` — a compact binary round-trip format.
"""

from repro.graph.handle import (
    Handle,
    forward,
    reverse,
    flip,
    node_id,
    is_reverse,
    pack_handle,
    unpack_handle,
)
from repro.graph.variation_graph import VariationGraph, Path
from repro.graph.builder import GraphBuilder, Variant
from repro.graph.serialize import save_graph, load_graph
from repro.graph.snarls import Superbubble, SnarlStatistics, decompose, find_superbubble

__all__ = [
    "Handle",
    "forward",
    "reverse",
    "flip",
    "node_id",
    "is_reverse",
    "pack_handle",
    "unpack_handle",
    "VariationGraph",
    "Path",
    "GraphBuilder",
    "Variant",
    "save_graph",
    "load_graph",
    "Superbubble",
    "SnarlStatistics",
    "decompose",
    "find_superbubble",
]
