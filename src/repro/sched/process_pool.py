"""The process-pool scheduler: GIL-free mapping over shared memory.

The three thread schedulers (:mod:`repro.sched.static` /
``dynamic`` / ``work_stealing``) interleave Python bytecode under the
GIL, so their wall-clock never scales with cores.  This module maps
batches on **worker processes** instead: the parent flattens the
read-only working set once into a :class:`repro.graph.shm.SharedMappingState`
segment, every worker attaches it zero-copy, and batches travel as tiny
``(segment, first, last, shard)`` descriptors over the supervised-pool
pipes — no pangenome pickling, no per-batch state shipping.

Architecture
------------

* **Workers** are :class:`repro.resilience.supervisor.SupervisedPool`
  children (spawn-safe, heartbeat-monitored, crash-only), built from the
  :func:`build_shm_batch_handler` factory below.  Each worker attaches
  the graph segment lazily on its first batch, builds its own
  :class:`~repro.index.distance.DistanceIndex` and per-shard
  :class:`~repro.gbwt.cache.CachedGBWT` instances, and then runs the
  exact same ``cluster_seeds`` → ``process_until_threshold`` loop as the
  threaded path.
* **Shard affinity** comes from a :class:`ShardPlan` derived from a
  :class:`repro.sim.platform.PlatformSpec` machine model: reads are
  split into contiguous shards, shards and workers are assigned sockets
  round-robin, and each parent-side dispatcher prefers its worker's own
  shard, then same-socket shards, stealing cross-socket only as a last
  resort (counted in ``sched_cross_socket_steals_total``).
* **Bit-identity**: kernels are deterministic per read and
  :class:`~repro.core.extend.KernelCounters` are independent of cache
  state, so partitioning by process instead of thread changes neither
  extensions nor counters; results merge in batch-index order, which
  reproduces the threaded path's keep-last-by-index dict semantics for
  duplicate read names.  Extensions cross the pipe through the lossless
  ``REXT`` codec (:func:`repro.core.io.save_extensions`).

Failure semantics mirror the thread schedulers: ``fail_fast`` re-raises
the first batch error after the dispatchers join; ``quarantine`` /
``retry`` policies record exhausted batches in a
:class:`~repro.resilience.policy.RunReport`.  Worker deaths are retried
*inside* the pool first (up to ``max_task_deaths``); only a poisonous
batch surfaces as a failure here.
"""

from __future__ import annotations

import io
import os
import threading
import time
from collections import deque
from dataclasses import asdict, dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.extend import GaplessExtension, KernelCounters
from repro.core.io import ReadRecord, load_extensions, save_extensions
from repro.core.options import ProxyOptions
from repro.core.scoring import ScoringParams
from repro.gbwt.gbz import GBZ
from repro.graph.shm import SharedMappingState, SharedReadBatch
from repro.obs import context as obs_context
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.resilience import faults as _faults
from repro.resilience.policy import BatchFailure, FailurePolicy, RunReport
from repro.resilience.supervisor import (
    HandlerSpec,
    PoolClosedError,
    SupervisedPool,
    WorkerDeathError,
    WorkerTaskError,
)
from repro.sched.base import BatchTrace
from repro.sim.platform import PlatformSpec, resolve_platform
from repro.util import timing
from repro.util.rng import SplitMix64, derive_seed

#: Scheduler name used for spans and metric labels.
POLICY_NAME = "process_pool"

#: Default per-task heartbeat deadline: a worker's first batch pays for
#: the shared-memory attach plus a distance-index build, during which a
#: pure-Python child can starve its heartbeat thread; see
#: ``SupervisedPool.task_heartbeat_deadline``.
DEFAULT_TASK_DEADLINE = 60.0


# ----------------------------------------------------------------------
# shard affinity


@dataclass(frozen=True)
class ShardPlan:
    """Contiguous read shards mapped onto a machine model's sockets.

    ``shards[s]`` is the half-open read-index range of shard ``s``;
    ``shard_socket`` / ``worker_socket`` place shards and workers on
    sockets round-robin (matching how the DES platform models spread
    threads); ``worker_shard[w]`` is worker ``w``'s home shard.
    """

    item_count: int
    shards: Tuple[Tuple[int, int], ...]
    shard_socket: Tuple[int, ...]
    worker_shard: Tuple[int, ...]
    worker_socket: Tuple[int, ...]

    @classmethod
    def build(cls, item_count: int, workers: int, platform: PlatformSpec,
              shard_count: int = 0) -> "ShardPlan":
        """Split ``item_count`` reads into shards with socket affinity.

        ``shard_count=0`` defaults to one shard per worker.  Shards are
        contiguous and near-equal (the first ``item_count % shards``
        shards get one extra read), so shard order equals read order —
        the property the bit-identity merge relies on.
        """
        if item_count < 0:
            raise ValueError("item_count must be non-negative")
        if workers < 1:
            raise ValueError("workers must be >= 1")
        count = shard_count if shard_count else workers
        base, extra = divmod(item_count, count)
        shards: List[Tuple[int, int]] = []
        start = 0
        for shard in range(count):
            size = base + (1 if shard < extra else 0)
            shards.append((start, start + size))
            start += size
        return cls(
            item_count=item_count,
            shards=tuple(shards),
            shard_socket=tuple(
                shard * platform.sockets // count for shard in range(count)
            ),
            worker_shard=tuple(
                worker * count // workers for worker in range(workers)
            ),
            worker_socket=tuple(
                worker * platform.sockets // workers
                for worker in range(workers)
            ),
        )

    def affinity_order(self, worker: int) -> List[int]:
        """Shard indices in steal order for ``worker``.

        Home shard first, then other shards on the worker's socket,
        then remote-socket shards — each tier in shard order.
        """
        home = self.worker_shard[worker]
        socket = self.worker_socket[worker]

        def tier(shard: int) -> int:
            if shard == home:
                return 0
            return 1 if self.shard_socket[shard] == socket else 2

        return sorted(range(len(self.shards)), key=lambda s: (tier(s), s))


# ----------------------------------------------------------------------
# worker-side handler


def build_shm_batch_handler(
    graph_segment: str,
    seed_span: int,
    cache_capacity: int,
    cache_lifetime: str,
    scoring: Dict[str, Any],
    extend: Dict[str, Any],
    process: Dict[str, Any],
):
    """Handler factory for one mapping worker (runs in the spawn child).

    All arguments are plain data (:class:`HandlerSpec` contract).  The
    returned handler attaches ``graph_segment`` on its first batch,
    keeps one :class:`~repro.gbwt.cache.CachedGBWT` per shard (so shard
    affinity translates into cache warmth), and maps each
    ``{"reads", "first", "last", "shard"}`` payload to the batch's
    extensions, kernel counters, and cumulative cache statistics.
    """
    from repro.core.cluster import cluster_seeds
    from repro.core.options import ExtendOptions, ProcessOptions
    from repro.core.process import process_until_threshold
    from repro.gbwt.cache import CachedGBWT
    from repro.index.distance import DistanceIndex

    scoring_params = ScoringParams(**scoring)
    extend_options = ExtendOptions(**extend)
    process_options = ProcessOptions(**process)
    state: Dict[str, Any] = {}

    def handler(payload: Dict[str, Any]) -> Dict[str, Any]:
        """Map one batch of reads out of shared memory."""
        attach_seconds = 0.0
        if "gbz" not in state:
            attach_start = timing.now()
            mapping = SharedMappingState.attach(graph_segment)
            gbz = mapping.gbz()
            state["mapping"] = mapping
            state["gbz"] = gbz
            state["distance"] = DistanceIndex(gbz.graph)
            state["caches"] = {}
            attach_seconds = timing.now() - attach_start
        gbz = state["gbz"]
        if payload["reads"] != state.get("reads_name"):
            batch_segment = SharedReadBatch.attach(payload["reads"])
            try:
                state["records"] = batch_segment.records()
            finally:
                batch_segment.close()
            state["reads_name"] = payload["reads"]
        records = state["records"]
        first, last, shard = payload["first"], payload["last"], payload["shard"]
        caches: Dict[int, Any] = state["caches"]
        cache = caches.get(shard)
        if cache is None:
            cache = caches[shard] = CachedGBWT(gbz.gbwt, cache_capacity)
        if cache_lifetime == "batch":
            cache.clear()
        if payload.get("storm"):
            cache.storm()
        counters = KernelCounters()
        per_read: Dict[str, List[GaplessExtension]] = {}
        kernel_start = timing.now()
        for index in range(first, last):
            record = records[index]
            clusters = cluster_seeds(
                state["distance"],
                record.seeds,
                len(record.sequence),
                seed_span,
                options=process_options,
                counters=counters,
            )
            per_read[record.name] = process_until_threshold(
                gbz.graph,
                cache,
                record.sequence,
                clusters,
                process_options=process_options,
                extend_options=extend_options,
                scoring=scoring_params,
                counters=counters,
            )
        encoded = io.BytesIO()
        save_extensions(per_read, encoded)
        cache_totals: Dict[str, float] = {}
        for shard_cache in caches.values():
            for key, value in shard_cache.stats().items():
                if key == "hit_rate":
                    continue
                cache_totals[key] = cache_totals.get(key, 0) + value
        return {
            "first": first,
            "last": last,
            "extensions": encoded.getvalue(),
            "counters": counters.as_dict(),
            "cache": cache_totals,
            "pid": os.getpid(),
            "kernel_seconds": timing.now() - kernel_start,
            "attach_seconds": attach_seconds,
        }

    return handler


# ----------------------------------------------------------------------
# parent-side runner


@dataclass
class ProcessMapOutcome:
    """Everything one process-pool run produces (pre-``MappingResult``)."""

    extensions: Dict[str, List[GaplessExtension]]
    counters: KernelCounters
    cache_stats: Dict[str, float]
    traces: List[BatchTrace]
    makespan: float
    report: RunReport
    missing_indices: List[int]
    worker_restarts: int


class ProcessPoolRunner:
    """Owns the shared graph segment and the supervised worker pool.

    Created once per :class:`~repro.core.proxy.MiniGiraffe` (lazily, on
    the first ``workers > 0`` run) and reused across runs so worker
    processes and their caches stay warm.  :meth:`close` tears down the
    pool and unlinks the segment; a dropped runner is cleaned up by the
    segment's finalizer, so even abandoned runs leak nothing past
    interpreter exit.
    """

    def __init__(
        self,
        gbz: GBZ,
        options: ProxyOptions,
        seed_span: int = 11,
        scoring: Optional[ScoringParams] = None,
        fault_plan=None,
        heartbeat_interval: float = 0.05,
        heartbeat_timeout: float = 1.0,
        task_heartbeat_deadline: float = DEFAULT_TASK_DEADLINE,
        max_task_deaths: int = 3,
    ):
        if options.workers < 1:
            raise ValueError("ProcessPoolRunner requires options.workers >= 1")
        self.gbz = gbz
        self.options = options
        self.seed_span = seed_span
        self.scoring = scoring or ScoringParams()
        self.platform = resolve_platform(options.platform)
        self.fault_plan = fault_plan
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_timeout = heartbeat_timeout
        self.task_heartbeat_deadline = task_heartbeat_deadline
        self.max_task_deaths = max_task_deaths
        self._state: Optional[SharedMappingState] = None
        self._pool: Optional[SupervisedPool] = None

    # -- lifecycle ------------------------------------------------------

    def start(self) -> "ProcessPoolRunner":
        """Create the shared segment and spawn the worker pool (idempotent)."""
        if self._pool is not None:
            return self
        self._state = SharedMappingState.create(self.gbz)
        spec = HandlerSpec(
            factory="repro.sched.process_pool:build_shm_batch_handler",
            kwargs={
                "graph_segment": self._state.name,
                "seed_span": self.seed_span,
                "cache_capacity": self.options.cache_capacity,
                "cache_lifetime": self.options.cache_lifetime,
                "scoring": asdict(self.scoring),
                "extend": asdict(self.options.extend),
                "process": asdict(self.options.process),
            },
        )
        self._pool = SupervisedPool(
            spec,
            workers=self.options.workers,
            heartbeat_interval=self.heartbeat_interval,
            heartbeat_timeout=self.heartbeat_timeout,
            task_heartbeat_deadline=self.task_heartbeat_deadline,
            max_task_deaths=self.max_task_deaths,
            fault_plan=self.fault_plan,
            registry=obs_metrics.get_metrics(),
        ).start()
        return self

    def close(self) -> None:
        """Shut the pool down and unlink the graph segment (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(drain=False)
            self._pool = None
        if self._state is not None:
            self._state.unlink()
            self._state = None

    def __enter__(self) -> "ProcessPoolRunner":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    @property
    def segment_name(self) -> Optional[str]:
        """Name of the shared graph segment (None before :meth:`start`)."""
        return self._state.name if self._state is not None else None

    def pool_stats(self) -> Dict[str, object]:
        """Supervision snapshot of the worker pool (empty before start)."""
        return self._pool.stats() if self._pool is not None else {}

    # -- mapping --------------------------------------------------------

    def map(
        self,
        records: Sequence[ReadRecord],
        resilience: Optional[FailurePolicy] = None,
    ) -> ProcessMapOutcome:
        """Map ``records`` across the worker processes.

        One dispatcher thread per worker slot pulls batches from the
        shard queues in affinity order and drives them through
        ``pool.run(..., prefer=slot)``, so batch *transport* overlaps
        batch *execution* and affinity survives worker restarts.
        Failure handling follows ``resilience`` exactly like the thread
        schedulers (fail-fast default, quarantine/retry otherwise).
        """
        self.start()
        policy = resilience if resilience is not None else FailurePolicy.fail_fast()
        report = RunReport()
        restarts_before = self._pool.stats()["restarts_total"]
        if not records:
            return ProcessMapOutcome(
                extensions={}, counters=KernelCounters(), cache_stats={},
                traces=[], makespan=0.0, report=report, missing_indices=[],
                worker_restarts=0,
            )
        workers = self.options.workers
        plan = ShardPlan.build(
            len(records), workers, self.platform, self.options.shards
        )
        batch_size = self.options.batch_size
        queues: List[deque] = []
        for shard, (first, last) in enumerate(plan.shards):
            queue: deque = deque()
            for start in range(first, last, batch_size):
                queue.append((start, min(start + batch_size, last), shard))
            queues.append(queue)
        queue_lock = threading.Lock()
        steals = [0]
        cross_socket_steals = [0]

        def take(slot: int) -> Optional[Tuple[int, int, int]]:
            """Pop the next batch for ``slot`` in affinity order."""
            with queue_lock:
                for shard in plan.affinity_order(slot):
                    if queues[shard]:
                        if shard != plan.worker_shard[slot]:
                            steals[0] += 1
                            if (plan.shard_socket[shard]
                                    != plan.worker_socket[slot]):
                                cross_socket_steals[0] += 1
                        return queues[shard].popleft()
            return None

        injector = _faults.active_injector()
        tracer = obs_trace.get_tracer()
        run_context = obs_context.current_context()
        outcomes: List[Optional[Dict[str, Any]]] = []
        quarantined: List[Tuple[int, int]] = []
        results_lock = threading.Lock()
        errors: List[Optional[BaseException]] = [None] * workers
        per_slot_traces: List[List[BatchTrace]] = [[] for _ in range(workers)]

        reads_segment = SharedReadBatch.create(list(records))

        def run_batch(slot: int, batch: Tuple[int, int, int],
                      rng: SplitMix64) -> None:
            first, last, shard = batch
            payload = {
                "reads": reads_segment.name,
                "first": first,
                "last": last,
                "shard": shard,
            }
            if injector is not None and injector.cache_storm(first):
                payload["storm"] = True
            attempts = 0
            while True:
                attempts += 1
                report.record_attempt()
                start = timing.now()
                error: str
                try:
                    with tracer.span(
                        "proxy.batch", context=run_context, worker=slot,
                        first=first, count=last - first,
                    ) as span:
                        verdict = self._pool.run(
                            payload, fault_key=first, prefer=slot
                        )
                        span.set(**verdict["counters"])
                        span.set(
                            kernel_s=verdict["kernel_seconds"],
                            attach_s=verdict["attach_seconds"],
                        )
                    with results_lock:
                        outcomes.append(verdict)
                    per_slot_traces[slot].append(
                        BatchTrace(slot, first, last - first, start,
                                   timing.now())
                    )
                    return
                except WorkerDeathError as exc:
                    caught: BaseException = exc
                    error = f"worker death: {exc}"
                except WorkerTaskError as exc:
                    caught = exc
                    error = str(exc)
                if policy.mode == "retry" and attempts < policy.max_attempts:
                    report.record_retry()
                    time.sleep(policy.backoff_delay(attempts, rng))
                    continue
                if policy.mode in ("quarantine", "retry"):
                    report.record_quarantine(BatchFailure(
                        first=first, last=last, thread=slot,
                        attempts=attempts, error=error,
                    ))
                    with results_lock:
                        quarantined.append((first, last))
                    return
                raise caught

        def dispatcher(slot: int) -> None:
            rng = SplitMix64(derive_seed(policy.seed, POLICY_NAME, slot))
            try:
                with obs_context.use_context(run_context):
                    while True:
                        batch = take(slot)
                        if batch is None:
                            return
                        run_batch(slot, batch, rng)
            except BaseException as exc:  # qa: ignore[broad-except] — collected, re-raised after join
                errors[slot] = exc

        start_time = timing.now()
        try:
            with tracer.span(
                f"sched.{POLICY_NAME}",
                context=run_context,
                items=len(records), workers=workers,
                shards=len(plan.shards), batch_size=batch_size,
            ) as span:
                threads = [
                    threading.Thread(
                        target=dispatcher, args=(slot,),
                        name=f"{POLICY_NAME}-dispatch-{slot}",
                    )
                    for slot in range(workers)
                ]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join()
                first_error = next(
                    (error for error in errors if error is not None), None
                )
                if first_error is not None:
                    span.set_error(first_error)
                    raise first_error
        finally:
            reads_segment.unlink()
        makespan = timing.now() - start_time

        missing = sorted(
            index
            for first, last in quarantined
            for index in range(first, last)
        )
        merged_extensions: Dict[str, List[GaplessExtension]] = {}
        counters = KernelCounters()
        cache_by_pid: Dict[int, Dict[str, float]] = {}
        for verdict in sorted(outcomes, key=lambda v: v["first"]):
            merged_extensions.update(
                load_extensions(io.BytesIO(verdict["extensions"]))
            )
            counters.merge(KernelCounters(**verdict["counters"]))
            cache_by_pid[verdict["pid"]] = verdict["cache"]
        cache_stats: Dict[str, float] = {}
        for snapshot in cache_by_pid.values():
            for key, value in snapshot.items():
                cache_stats[key] = cache_stats.get(key, 0) + value
        accesses = cache_stats.get("hits", 0) + cache_stats.get("misses", 0)
        cache_stats["hit_rate"] = (
            cache_stats.get("hits", 0) / accesses if accesses else 0.0
        )
        traces = [t for slot in per_slot_traces for t in slot]
        traces.sort(key=lambda t: (t.start, t.thread))
        restarts_after = self._pool.stats()["restarts_total"]
        self._publish_metrics(
            traces, workers, batch_size, report,
            steals[0], cross_socket_steals[0],
        )
        return ProcessMapOutcome(
            extensions=merged_extensions,
            counters=counters,
            cache_stats=cache_stats,
            traces=traces,
            makespan=makespan,
            report=report,
            missing_indices=missing,
            worker_restarts=restarts_after - restarts_before,
        )

    def _publish_metrics(
        self,
        traces: List[BatchTrace],
        workers: int,
        batch_size: int,
        report: RunReport,
        steals: int,
        cross_socket: int,
    ) -> None:
        """Export run-level scheduler counters (mirrors ``Scheduler``)."""
        registry = obs_metrics.get_metrics()
        registry.counter(
            "sched_batches_total", "batches executed by the scheduler"
        ).inc(len(traces), policy=POLICY_NAME)
        registry.counter(
            "sched_items_total", "work items executed by the scheduler"
        ).inc(sum(t.item_count for t in traces), policy=POLICY_NAME)
        registry.gauge(
            "sched_threads", "thread count of the most recent run"
        ).set(workers, policy=POLICY_NAME)
        registry.gauge(
            "sched_batch_size", "batch size of the most recent run"
        ).set(batch_size, policy=POLICY_NAME)
        registry.counter(
            "sched_batch_retries_total",
            "batch re-executions under a retry failure policy",
        ).inc(report.retries, policy=POLICY_NAME)
        registry.counter(
            "sched_batches_quarantined_total",
            "batches that exhausted their failure policy",
        ).inc(len(report.failures), policy=POLICY_NAME)
        registry.counter(
            "sched_shard_steals_total",
            "batches taken from a non-home shard",
        ).inc(steals, policy=POLICY_NAME)
        registry.counter(
            "sched_cross_socket_steals_total",
            "batches stolen across the model's socket boundary",
        ).inc(cross_socket, policy=POLICY_NAME)
