"""Parallel schedulers for batch-of-reads execution.

The paper tunes three scheduling policies:

* ``dynamic`` — OpenMP-style dynamic scheduling: threads claim the next
  batch from a shared counter (miniGiraffe's default);
* ``static`` — batches assigned round-robin up front;
* ``work_stealing`` — the paper's in-house scheduler: the read range is
  pre-split evenly, each thread consumes its own region batch-by-batch,
  and finished threads steal batches from victims round-robin.

All three run real Python threads (policy behaviour, batch traces, and
imbalance are genuine); parallel *speedup* studies use the discrete-event
models in :mod:`repro.sim.des`, since the GIL serializes Python compute.
"""

from repro.sched.base import BatchTrace, Scheduler, make_scheduler
from repro.sched.dynamic import DynamicScheduler
from repro.sched.static import StaticScheduler
from repro.sched.work_stealing import WorkStealingScheduler

__all__ = [
    "BatchTrace",
    "Scheduler",
    "make_scheduler",
    "DynamicScheduler",
    "StaticScheduler",
    "WorkStealingScheduler",
]
