"""OpenMP-style dynamic scheduling: threads claim the next batch from a
shared cursor.  This is miniGiraffe's default policy; it balances load
automatically at the cost of contention on the shared counter and the
loss of any thread-to-data affinity."""

from __future__ import annotations

import threading
from typing import List

from repro.sched.base import BatchFn, BatchTrace, Scheduler
from repro.util import timing


class DynamicScheduler(Scheduler):
    """Shared-cursor batch claiming (the `#pragma omp dynamic` analogue)."""

    name = "dynamic"

    def __init__(self):
        self._cursor = 0  # qa: guarded-by(self._lock)
        self._lock = threading.Lock()
        self.claims = 0  # qa: guarded-by(self._lock)

    def _prepare(self, item_count: int, threads: int, batch_size: int) -> None:
        """Rewind the shared cursor and the claim counter."""
        # Single-threaded reset: _prepare runs on the caller before any
        # worker is spawned, so the lock is deliberately not taken.
        self._cursor = 0  # qa: ignore[missing-lock-guard]
        self.claims = 0  # qa: ignore[missing-lock-guard]

    def _claim(self, item_count: int, batch_size: int):
        """Atomically claim the next batch; None when work is exhausted."""
        with self._lock:
            if self._cursor >= item_count:
                return None
            first = self._cursor
            self._cursor = min(item_count, first + batch_size)
            self.claims += 1
            return first, self._cursor

    def _publish_metrics(self, registry, traces, threads, batch_size) -> None:
        """Base series plus the shared-cursor claim count."""
        super()._publish_metrics(registry, traces, threads, batch_size)
        registry.counter(
            "sched_claims_total", "successful claims on the shared cursor"
        ).inc(self.claims, policy=self.name)

    def _thread_body(
        self,
        thread_id: int,
        item_count: int,
        batch_size: int,
        threads: int,
        process_batch: BatchFn,
        traces: List[BatchTrace],
    ) -> None:
        while True:
            claim = self._claim(item_count, batch_size)
            if claim is None:
                return
            first, last = claim
            start = timing.now()
            process_batch(first, last, thread_id)
            self._record(traces, thread_id, first, last, start)
