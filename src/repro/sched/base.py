"""Scheduler interface and shared runner machinery.

Failure semantics: an exception raised inside any worker thread is
collected and re-raised to the ``run()`` caller after every worker has
joined — worker deaths are never silent.  Passing a
:class:`repro.resilience.FailurePolicy` (or installing a
:class:`repro.resilience.FaultPlan`) upgrades the bare fail-fast
behaviour to per-batch retry/quarantine handling plus an optional
hung-batch watchdog; the filled-in :class:`repro.resilience.RunReport`
is left on :attr:`Scheduler.last_report`.  With neither in force the
original zero-coordination fast path runs unchanged.
"""

from __future__ import annotations

import threading
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.obs import context as obs_context
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.resilience import faults as _faults
from repro.resilience.harness import BatchHarness, Watchdog
from repro.resilience.policy import FailurePolicy, RunReport
from repro.util import timing

#: A batch processor: ``process_batch(first_item, last_item, thread_id)``
#: handles items ``[first_item, last_item)``.
BatchFn = Callable[[int, int, int], None]


@dataclass(frozen=True)
class BatchTrace:
    """One executed batch, for timelines and imbalance analysis."""

    thread: int
    first_item: int
    item_count: int
    start: float
    end: float

    @property
    def duration(self) -> float:
        """Wall-clock seconds the batch took."""
        return self.end - self.start


class Scheduler(ABC):
    """Common driver: spawn threads, collect per-batch traces."""

    name = "abstract"

    #: The :class:`repro.resilience.RunReport` of the most recent
    #: :meth:`run` under a failure policy or fault plan; None after a
    #: plain fast-path run.
    last_report: Optional[RunReport] = None

    @abstractmethod
    def _thread_body(
        self,
        thread_id: int,
        item_count: int,
        batch_size: int,
        threads: int,
        process_batch: BatchFn,
        traces: List[BatchTrace],
    ) -> None:
        """Consume batches until none remain for this thread."""

    def run(
        self,
        item_count: int,
        process_batch: BatchFn,
        threads: int,
        batch_size: int,
        resilience: Optional[FailurePolicy] = None,
    ) -> List[BatchTrace]:
        """Process ``item_count`` items and return the merged batch traces.

        Every item is processed exactly once (or, under a quarantine /
        retry ``resilience`` policy, reported failed in
        :attr:`last_report` — never silently lost); traces are sorted by
        start time.  With ``threads == 1`` the calling thread does the
        work (no thread spawn overhead for sequential baselines).

        A worker exception is re-raised here, in the caller, after all
        workers have joined; ``resilience`` selects quarantine or retry
        handling instead of that fail-fast default.
        """
        if item_count < 0:
            raise ValueError("item_count must be non-negative")
        if threads < 1 or batch_size < 1:
            raise ValueError("threads and batch_size must be positive")
        with obs_trace.get_tracer().span(
            f"sched.{self.name}",
            context=obs_context.current_context(),
            items=item_count, threads=threads, batch_size=batch_size,
        ) as span:
            try:
                merged = self._run_inner(
                    item_count, process_batch, threads, batch_size, resilience
                )
            except Exception as exc:
                span.set_error(exc)
                self._publish_metrics(
                    obs_metrics.get_metrics(), [], threads, batch_size
                )
                raise
        self._publish_metrics(
            obs_metrics.get_metrics(), merged, threads, batch_size
        )
        return merged

    def _run_inner(
        self,
        item_count: int,
        process_batch: BatchFn,
        threads: int,
        batch_size: int,
        resilience: Optional[FailurePolicy] = None,
    ) -> List[BatchTrace]:
        """Validated body of :meth:`run`: spawn, join, merge traces.

        Wraps ``process_batch`` in a :class:`BatchHarness` when a
        failure policy is supplied or a fault plan is installed; with
        neither, the original direct-call fast path runs (plus worker
        exception propagation, which costs one try/except per thread).
        """
        self._prepare(item_count, threads, batch_size)
        self.last_report = None
        harness: Optional[BatchHarness] = None
        watchdog: Optional[Watchdog] = None
        if resilience is not None or _faults.active_injector() is not None:
            harness = BatchHarness(
                process_batch, resilience or FailurePolicy.fail_fast()
            )
            self.last_report = harness.report
            process_batch = harness
            if harness.policy.watchdog is not None:
                watchdog = Watchdog(harness)
        per_thread_traces: List[List[BatchTrace]] = [[] for _ in range(threads)]
        errors: List[Optional[BaseException]] = [None] * threads
        # Captured inside the sched.* span on the submitting thread;
        # worker threads re-install it so their proxy.batch spans join
        # the same trace tree instead of starting orphan traces.
        run_context = obs_context.current_context()

        def worker_body(tid: int) -> None:
            try:
                with obs_context.use_context(run_context):
                    self._thread_body(
                        tid, item_count, batch_size, threads, process_batch,
                        per_thread_traces[tid],
                    )
                    if harness is not None:
                        harness.drain_requeued(
                            tid,
                            lambda first, last, thread_id, start: self._record(
                                per_thread_traces[thread_id], thread_id,
                                first, last, start,
                            ),
                        )
            except BaseException as exc:  # qa: ignore[broad-except] — collected, re-raised after join
                errors[tid] = exc

        if watchdog is not None:
            watchdog.start()
        try:
            if threads == 1:
                worker_body(0)
            else:
                workers = [
                    threading.Thread(
                        target=worker_body,
                        args=(tid,),
                        name=f"{self.name}-worker-{tid}",
                    )
                    for tid in range(threads)
                ]
                for worker in workers:
                    worker.start()
                for worker in workers:
                    worker.join()
        finally:
            if watchdog is not None:
                watchdog.stop()
        for error in errors:
            if error is not None:
                raise error
        merged = [trace for traces in per_thread_traces for trace in traces]
        merged.sort(key=lambda t: (t.start, t.thread))
        return merged

    def _prepare(self, item_count: int, threads: int, batch_size: int) -> None:
        """Reset per-run shared state; subclasses override as needed."""

    def _publish_metrics(
        self,
        registry: "obs_metrics.MetricsRegistry",
        traces: List[BatchTrace],
        threads: int,
        batch_size: int,
    ) -> None:
        """Export run-level counters to the metrics registry.

        Called once per :meth:`run` (never on the per-batch hot path).
        Subclasses extend this with policy-specific series — steal
        counts, claim counts, queue depths.
        """
        registry.counter(
            "sched_batches_total", "batches executed by the scheduler"
        ).inc(len(traces), policy=self.name)
        registry.counter(
            "sched_items_total", "work items executed by the scheduler"
        ).inc(sum(t.item_count for t in traces), policy=self.name)
        registry.gauge(
            "sched_threads", "thread count of the most recent run"
        ).set(threads, policy=self.name)
        registry.gauge(
            "sched_batch_size", "batch size of the most recent run"
        ).set(batch_size, policy=self.name)
        report = self.last_report
        if report is not None:
            registry.counter(
                "sched_batch_retries_total",
                "batch re-executions under a retry failure policy",
            ).inc(report.retries, policy=self.name)
            registry.counter(
                "sched_batches_quarantined_total",
                "batches that exhausted their failure policy",
            ).inc(len(report.failures), policy=self.name)
            registry.counter(
                "sched_watchdog_triggers_total",
                "batches flagged past the watchdog soft deadline",
            ).inc(len(report.watchdog_events), policy=self.name)

    @staticmethod
    def _record(
        traces: List[BatchTrace],
        thread_id: int,
        first: int,
        last: int,
        start: float,
    ) -> None:
        traces.append(
            BatchTrace(thread_id, first, last - first, start, timing.now())
        )


def make_scheduler(name: str) -> Scheduler:
    """Factory for the three named policies."""
    from repro.sched.dynamic import DynamicScheduler
    from repro.sched.static import StaticScheduler
    from repro.sched.work_stealing import WorkStealingScheduler

    registry = {
        "dynamic": DynamicScheduler,
        "static": StaticScheduler,
        "work_stealing": WorkStealingScheduler,
    }
    if name not in registry:
        raise ValueError(f"unknown scheduler {name!r}; choose from {sorted(registry)}")
    return registry[name]()
