"""Scheduler interface and shared runner machinery."""

from __future__ import annotations

import threading
import time
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable, List

from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace

#: A batch processor: ``process_batch(first_item, last_item, thread_id)``
#: handles items ``[first_item, last_item)``.
BatchFn = Callable[[int, int, int], None]


@dataclass(frozen=True)
class BatchTrace:
    """One executed batch, for timelines and imbalance analysis."""

    thread: int
    first_item: int
    item_count: int
    start: float
    end: float

    @property
    def duration(self) -> float:
        """Wall-clock seconds the batch took."""
        return self.end - self.start


class Scheduler(ABC):
    """Common driver: spawn threads, collect per-batch traces."""

    name = "abstract"

    @abstractmethod
    def _thread_body(
        self,
        thread_id: int,
        item_count: int,
        batch_size: int,
        threads: int,
        process_batch: BatchFn,
        traces: List[BatchTrace],
    ) -> None:
        """Consume batches until none remain for this thread."""

    def run(
        self,
        item_count: int,
        process_batch: BatchFn,
        threads: int,
        batch_size: int,
    ) -> List[BatchTrace]:
        """Process ``item_count`` items and return the merged batch traces.

        Every item is processed exactly once; traces are sorted by start
        time.  With ``threads == 1`` the calling thread does the work
        (no thread spawn overhead for sequential baselines).
        """
        if item_count < 0:
            raise ValueError("item_count must be non-negative")
        if threads < 1 or batch_size < 1:
            raise ValueError("threads and batch_size must be positive")
        with obs_trace.get_tracer().span(
            f"sched.{self.name}", items=item_count, threads=threads,
            batch_size=batch_size,
        ):
            merged = self._run_inner(item_count, process_batch, threads, batch_size)
        self._publish_metrics(
            obs_metrics.get_metrics(), merged, threads, batch_size
        )
        return merged

    def _run_inner(
        self,
        item_count: int,
        process_batch: BatchFn,
        threads: int,
        batch_size: int,
    ) -> List[BatchTrace]:
        """Validated body of :meth:`run`: spawn, join, merge traces."""
        self._prepare(item_count, threads, batch_size)
        per_thread_traces: List[List[BatchTrace]] = [[] for _ in range(threads)]
        if threads == 1:
            self._thread_body(
                0, item_count, batch_size, 1, process_batch, per_thread_traces[0]
            )
        else:
            workers = [
                threading.Thread(
                    target=self._thread_body,
                    args=(
                        tid,
                        item_count,
                        batch_size,
                        threads,
                        process_batch,
                        per_thread_traces[tid],
                    ),
                    name=f"{self.name}-worker-{tid}",
                )
                for tid in range(threads)
            ]
            for worker in workers:
                worker.start()
            for worker in workers:
                worker.join()
        merged = [trace for traces in per_thread_traces for trace in traces]
        merged.sort(key=lambda t: (t.start, t.thread))
        return merged

    def _prepare(self, item_count: int, threads: int, batch_size: int) -> None:
        """Reset per-run shared state; subclasses override as needed."""

    def _publish_metrics(
        self,
        registry: "obs_metrics.MetricsRegistry",
        traces: List[BatchTrace],
        threads: int,
        batch_size: int,
    ) -> None:
        """Export run-level counters to the metrics registry.

        Called once per :meth:`run` (never on the per-batch hot path).
        Subclasses extend this with policy-specific series — steal
        counts, claim counts, queue depths.
        """
        registry.counter(
            "sched_batches_total", "batches executed by the scheduler"
        ).inc(len(traces), policy=self.name)
        registry.counter(
            "sched_items_total", "work items executed by the scheduler"
        ).inc(sum(t.item_count for t in traces), policy=self.name)
        registry.gauge(
            "sched_threads", "thread count of the most recent run"
        ).set(threads, policy=self.name)
        registry.gauge(
            "sched_batch_size", "batch size of the most recent run"
        ).set(batch_size, policy=self.name)

    @staticmethod
    def _record(
        traces: List[BatchTrace],
        thread_id: int,
        first: int,
        last: int,
        start: float,
    ) -> None:
        traces.append(
            BatchTrace(thread_id, first, last - first, start, time.perf_counter())
        )


def make_scheduler(name: str) -> Scheduler:
    """Factory for the three named policies."""
    from repro.sched.dynamic import DynamicScheduler
    from repro.sched.static import StaticScheduler
    from repro.sched.work_stealing import WorkStealingScheduler

    registry = {
        "dynamic": DynamicScheduler,
        "static": StaticScheduler,
        "work_stealing": WorkStealingScheduler,
    }
    if name not in registry:
        raise ValueError(f"unknown scheduler {name!r}; choose from {sorted(registry)}")
    return registry[name]()
