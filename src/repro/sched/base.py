"""Scheduler interface and shared runner machinery."""

from __future__ import annotations

import threading
import time
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable, List

#: A batch processor: ``process_batch(first_item, last_item, thread_id)``
#: handles items ``[first_item, last_item)``.
BatchFn = Callable[[int, int, int], None]


@dataclass(frozen=True)
class BatchTrace:
    """One executed batch, for timelines and imbalance analysis."""

    thread: int
    first_item: int
    item_count: int
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


class Scheduler(ABC):
    """Common driver: spawn threads, collect per-batch traces."""

    name = "abstract"

    @abstractmethod
    def _thread_body(
        self,
        thread_id: int,
        item_count: int,
        batch_size: int,
        threads: int,
        process_batch: BatchFn,
        traces: List[BatchTrace],
    ) -> None:
        """Consume batches until none remain for this thread."""

    def run(
        self,
        item_count: int,
        process_batch: BatchFn,
        threads: int,
        batch_size: int,
    ) -> List[BatchTrace]:
        """Process ``item_count`` items and return the merged batch traces.

        Every item is processed exactly once; traces are sorted by start
        time.  With ``threads == 1`` the calling thread does the work
        (no thread spawn overhead for sequential baselines).
        """
        if item_count < 0:
            raise ValueError("item_count must be non-negative")
        if threads < 1 or batch_size < 1:
            raise ValueError("threads and batch_size must be positive")
        self._prepare(item_count, threads, batch_size)
        per_thread_traces: List[List[BatchTrace]] = [[] for _ in range(threads)]
        if threads == 1:
            self._thread_body(
                0, item_count, batch_size, 1, process_batch, per_thread_traces[0]
            )
        else:
            workers = [
                threading.Thread(
                    target=self._thread_body,
                    args=(
                        tid,
                        item_count,
                        batch_size,
                        threads,
                        process_batch,
                        per_thread_traces[tid],
                    ),
                    name=f"{self.name}-worker-{tid}",
                )
                for tid in range(threads)
            ]
            for worker in workers:
                worker.start()
            for worker in workers:
                worker.join()
        merged = [trace for traces in per_thread_traces for trace in traces]
        merged.sort(key=lambda t: (t.start, t.thread))
        return merged

    def _prepare(self, item_count: int, threads: int, batch_size: int) -> None:
        """Reset per-run shared state; subclasses override as needed."""

    @staticmethod
    def _record(
        traces: List[BatchTrace],
        thread_id: int,
        first: int,
        last: int,
        start: float,
    ) -> None:
        traces.append(
            BatchTrace(thread_id, first, last - first, start, time.perf_counter())
        )


def make_scheduler(name: str) -> Scheduler:
    """Factory for the three named policies."""
    from repro.sched.dynamic import DynamicScheduler
    from repro.sched.static import StaticScheduler
    from repro.sched.work_stealing import WorkStealingScheduler

    registry = {
        "dynamic": DynamicScheduler,
        "static": StaticScheduler,
        "work_stealing": WorkStealingScheduler,
    }
    if name not in registry:
        raise ValueError(f"unknown scheduler {name!r}; choose from {sorted(registry)}")
    return registry[name]()
