"""Static scheduling: batches are assigned round-robin before execution.

No runtime coordination at all — the cheapest policy when per-item cost
is uniform, and the worst when it is not (stragglers keep whole regions
while other threads idle)."""

from __future__ import annotations

from typing import List

from repro.sched.base import BatchFn, BatchTrace, Scheduler
from repro.util import timing


class StaticScheduler(Scheduler):
    """Round-robin batch pre-assignment (the `#pragma omp static` analogue)."""

    name = "static"

    def _thread_body(
        self,
        thread_id: int,
        item_count: int,
        batch_size: int,
        threads: int,
        process_batch: BatchFn,
        traces: List[BatchTrace],
    ) -> None:
        batch_count = (item_count + batch_size - 1) // batch_size
        for batch_index in range(thread_id, batch_count, threads):
            first = batch_index * batch_size
            last = min(item_count, first + batch_size)
            start = timing.now()
            process_batch(first, last, thread_id)
            self._record(traces, thread_id, first, last, start)
