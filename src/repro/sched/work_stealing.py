"""The paper's in-house work-stealing scheduler.

The read range is pre-split into one contiguous region per thread; each
thread consumes its own region in ``batch_size`` chunks, and a thread
that exhausts its region steals one chunk at a time from the other
regions, visiting victims round-robin starting from its right-hand
neighbour.  Claims use an atomic read-modify-write on the region cursor
(a mutex-protected increment here, standing in for the C++ atomic),
which keeps the policy lightweight and preserves locality while work
remains local.
"""

from __future__ import annotations

import threading
from typing import List, Optional, Tuple

from repro.sched.base import BatchFn, BatchTrace, Scheduler
from repro.util import timing


class _Region:
    """One thread's share of the items, with an atomically claimed cursor."""

    __slots__ = ("cursor", "limit", "lock")

    def __init__(self, first: int, last: int):
        self.cursor = first  # qa: guarded-by(self.lock)
        self.limit = last
        self.lock = threading.Lock()

    def claim(self, batch_size: int) -> Optional[Tuple[int, int]]:
        with self.lock:
            if self.cursor >= self.limit:
                return None
            first = self.cursor
            self.cursor = min(self.limit, first + batch_size)
            return first, self.cursor

    def claim_half(self, batch_size: int) -> Optional[Tuple[int, int]]:
        """Claim half the remaining items (at least one batch)."""
        with self.lock:
            remaining = self.limit - self.cursor
            if remaining <= 0:
                return None
            take = max(batch_size, remaining // 2)
            first = self.cursor
            self.cursor = min(self.limit, first + take)
            return first, self.cursor

    def remaining(self) -> int:
        """Items not yet claimed, read under the region lock.

        Thieves probe this before stealing; reading the cursor under the
        lock keeps the region free of unsynchronized accesses (the
        lockset audit in repro.qa.races flagged the previous bare read).
        """
        with self.lock:
            return self.limit - self.cursor


class WorkStealingScheduler(Scheduler):
    """Pre-split regions with round-robin batch stealing.

    ``steal_half=True`` switches the steal granularity from one batch to
    half of the victim's remaining region (the Cilk-style alternative);
    the ``test_ablation_steal_policy`` benchmark compares the two.
    """

    name = "work_stealing"

    def __init__(self, steal_half: bool = False):
        self.steal_half = steal_half
        self._regions: List[_Region] = []
        self.steals = 0  # qa: guarded-by(self._steal_lock)
        self.steal_attempts = 0  # qa: guarded-by(self._steal_lock)
        self._victim_depths: List[int] = []  # qa: guarded-by(self._steal_lock)
        self._steal_lock = threading.Lock()

    def _prepare(self, item_count: int, threads: int, batch_size: int) -> None:
        """Reset steal statistics and split the range into regions."""
        # Single-threaded reset: _prepare runs on the caller before any
        # worker is spawned, so the lock is deliberately not taken.
        self.steals = 0  # qa: ignore[missing-lock-guard]
        self.steal_attempts = 0  # qa: ignore[missing-lock-guard]
        self._victim_depths = []  # qa: ignore[missing-lock-guard]
        self._regions = []
        base = item_count // threads
        extra = item_count % threads
        first = 0
        for tid in range(threads):
            size = base + (1 if tid < extra else 0)
            self._regions.append(_Region(first, first + size))
            first += size

    def _thread_body(
        self,
        thread_id: int,
        item_count: int,
        batch_size: int,
        threads: int,
        process_batch: BatchFn,
        traces: List[BatchTrace],
    ) -> None:
        own = self._regions[thread_id]
        while True:
            claim = own.claim(batch_size)
            if claim is None:
                break
            first, last = claim
            start = timing.now()
            process_batch(first, last, thread_id)
            self._record(traces, thread_id, first, last, start)
        # Own region exhausted: steal round-robin from the neighbours.
        for step in range(1, threads):
            victim = self._regions[(thread_id + step) % threads]
            while True:
                depth = victim.remaining()
                if self.steal_half:
                    claim = victim.claim_half(batch_size)
                else:
                    claim = victim.claim(batch_size)
                with self._steal_lock:
                    self.steal_attempts += 1
                    if claim is not None:
                        self.steals += 1
                        self._victim_depths.append(max(depth, 0))
                if claim is None:
                    break
                first, last = claim
                start = timing.now()
                process_batch(first, last, thread_id)
                self._record(traces, thread_id, first, last, start)

    def _publish_metrics(self, registry, traces, threads, batch_size) -> None:
        """Base series plus steal attempts/successes and victim depths.

        ``sched_steal_victim_depth`` is a histogram of how many items
        the victim region still held when a steal succeeded — the queue
        depth the thief saw, in units of items.
        """
        super()._publish_metrics(registry, traces, threads, batch_size)
        registry.counter(
            "sched_steal_attempts_total", "steal probes (successful or not)"
        ).inc(self.steal_attempts, policy=self.name)
        registry.counter(
            "sched_steals_total", "successful cross-region steals"
        ).inc(self.steals, policy=self.name)
        depth_hist = registry.histogram(
            "sched_steal_victim_depth",
            "items remaining in the victim region at steal time",
        )
        for depth in self._victim_depths:
            depth_hist.observe(depth, policy=self.name)
