"""Human-readable rendering of measured tuning sweeps (Table VIII).

:func:`repro.tuning.sweep.run_sweep` produces a ``repro.tune/v1`` dict
and :func:`repro.tuning.model.summarize_sweep` distills it; this module
turns the summary into the aligned text report ``repro tune --measured``
prints: the full grid ranked by wall time, the best-vs-default verdict
line, and the clustering distance-query comparison.  Renderers take
data, never run anything, so they work equally on a fresh sweep and one
loaded from a JSON report on disk.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.tables import format_table
from repro.tuning.model import SweepSummary


def _fmt_reduction(reduction: Optional[float]) -> str:
    return f"{reduction:.1%}" if reduction is not None else "n/a"


def render_tune_report(summary: SweepSummary) -> str:
    """The Table VIII-style text report for one measured sweep."""
    ranked = sorted(summary.entries, key=lambda e: (e.wall_time, e.key))
    rows = [
        [
            entry.label(),
            f"{entry.wall_time:.4f}",
            f"{summary.default.wall_time / entry.wall_time:.2f}x",
            f"{entry.cache_hit_rate:.1%}",
            "best" if entry is ranked[0] else "",
        ]
        for entry in ranked
    ]
    rows.append([
        f"default: {summary.default.label()}",
        f"{summary.default.wall_time:.4f}",
        "1.00x",
        f"{summary.default.cache_hit_rate:.1%}",
        "",
    ])
    sections = [format_table(
        f"Tuning sweep '{summary.input_set}' "
        f"({len(summary.entries)} grid points)",
        ["config", "wall_s", "speedup", "cache_hit", ""],
        rows,
    )]
    lines = [
        f"best config: {summary.best.label()} "
        f"({summary.best.wall_time:.4f}s, {summary.speedup:.2f}x over "
        f"default {summary.default.wall_time:.4f}s)",
        f"grid geomean speedup vs default: {summary.geomean_speedup:.3f}x",
    ]
    allpairs = summary.clustering.get("distance_queries_allpairs")
    if allpairs is not None:
        lines.append(
            "clustering distance queries: "
            f"{summary.clustering.get('distance_queries', 0)} "
            f"(all-pairs reference: {allpairs}, "
            f"reduction {_fmt_reduction(summary.distance_query_reduction())})"
        )
    sections.append("\n".join(lines))
    return "\n\n".join(sections)
