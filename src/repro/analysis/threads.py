"""Per-thread utilization analysis from scheduler batch traces.

Turns the :class:`repro.sched.base.BatchTrace` stream every run produces
into the load-balance view the paper's case studies reason about:
per-thread busy time, utilization against the run's wall-clock span,
imbalance ratios, and batch-count distribution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.sched.base import BatchTrace


@dataclass(frozen=True)
class ThreadUtilization:
    """One thread's share of a run."""

    thread: int
    busy_time: float
    batches: int
    items: int
    first_start: float
    last_end: float


@dataclass
class UtilizationReport:
    """Load-balance summary of one parallel run."""

    threads: List[ThreadUtilization]
    span: float

    @property
    def thread_count(self) -> int:
        """Number of threads that did any work."""
        return len(self.threads)

    @property
    def total_busy(self) -> float:
        """Aggregate busy time across all threads, seconds."""
        return sum(t.busy_time for t in self.threads)

    @property
    def mean_utilization(self) -> float:
        """Average busy fraction of the wall-clock span."""
        if not self.threads or self.span <= 0:
            return 0.0
        return self.total_busy / (self.span * len(self.threads))

    @property
    def imbalance(self) -> float:
        """Max/mean busy-time ratio (1.0 is perfectly balanced)."""
        if not self.threads:
            return 1.0
        busy = [t.busy_time for t in self.threads]
        mean = sum(busy) / len(busy)
        return max(busy) / mean if mean > 0 else 1.0

    @property
    def late_start(self) -> float:
        """Latest thread start relative to the run start (Figure 2's
        thread-0 artifact shows up here)."""
        if not self.threads:
            return 0.0
        first = min(t.first_start for t in self.threads)
        return max(t.first_start for t in self.threads) - first

    def rows(self) -> List[List]:
        """Table rows for rendering."""
        return [
            [t.thread, round(t.busy_time, 4), t.batches, t.items]
            for t in self.threads
        ]


def analyze_traces(traces: Sequence[BatchTrace]) -> UtilizationReport:
    """Aggregate a run's batch traces into a utilization report."""
    if not traces:
        return UtilizationReport(threads=[], span=0.0)
    by_thread: Dict[int, List[BatchTrace]] = {}
    for trace in traces:
        by_thread.setdefault(trace.thread, []).append(trace)
    threads = []
    for thread in sorted(by_thread):
        batches = by_thread[thread]
        threads.append(
            ThreadUtilization(
                thread=thread,
                busy_time=sum(b.duration for b in batches),
                batches=len(batches),
                items=sum(b.item_count for b in batches),
                first_start=min(b.start for b in batches),
                last_end=max(b.end for b in batches),
            )
        )
    span = max(t.last_end for t in threads) - min(t.first_start for t in threads)
    return UtilizationReport(threads=threads, span=span)
