"""Small numeric helpers shared by the benches and EXPERIMENTS.md."""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple


def percent_diff(measured: float, reference: float) -> float:
    """Percent difference of ``measured`` over ``reference`` (Table VI's
    "% diff over Giraffe" column)."""
    if reference == 0:
        raise ValueError("reference must be non-zero")
    return 100.0 * (measured - reference) / reference


def speedup_series(
    baseline: float, makespans: Sequence[Tuple[int, float]]
) -> List[Tuple[int, float]]:
    """(threads, speedup) pairs from a 1-thread baseline and makespans."""
    if baseline <= 0:
        raise ValueError("baseline must be positive")
    return [(threads, baseline / m) for threads, m in makespans]


def efficiency_series(
    speedups: Sequence[Tuple[int, float]]
) -> List[Tuple[int, float]]:
    """(threads, parallel efficiency) from a speedup series."""
    return [(t, s / t) for t, s in speedups if t > 0]
