"""Fidelity accounting: paper-vs-measured comparison tables.

EXPERIMENTS.md records, for every table and figure, the paper's number
next to this reproduction's.  This module is the programmatic form: a
ledger of (metric, paper value, measured value) entries with ratio
statistics and band checks, used by reports and tests that want to
assert "within a factor of X of the paper" uniformly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional

from repro.analysis.tables import format_table


@dataclass(frozen=True)
class Comparison:
    """One paper-vs-measured data point."""

    metric: str
    paper: float
    measured: float

    @property
    def ratio(self) -> float:
        """measured / paper (1.0 = exact reproduction)."""
        if self.paper == 0:
            raise ValueError(f"{self.metric}: paper value is zero")
        return self.measured / self.paper

    def within_factor(self, factor: float) -> bool:
        """True when measured is within [paper/factor, paper*factor]."""
        if factor < 1.0:
            raise ValueError("factor must be >= 1")
        return 1.0 / factor <= self.ratio <= factor


@dataclass
class FidelityReport:
    """A ledger of comparisons with aggregate fidelity statistics."""

    title: str
    comparisons: List[Comparison] = field(default_factory=list)

    def add(self, metric: str, paper: float, measured: float) -> None:
        """Append one (metric, paper, measured) comparison."""
        self.comparisons.append(Comparison(metric, paper, measured))

    def __len__(self) -> int:
        return len(self.comparisons)

    def geometric_mean_ratio(self) -> float:
        """Geometric mean of measured/paper ratios (bias direction)."""
        if not self.comparisons:
            raise ValueError("empty fidelity report")
        return math.exp(
            sum(math.log(c.ratio) for c in self.comparisons)
            / len(self.comparisons)
        )

    def worst(self) -> Comparison:
        """The comparison farthest from 1.0 (in log space)."""
        if not self.comparisons:
            raise ValueError("empty fidelity report")
        return max(self.comparisons, key=lambda c: abs(math.log(c.ratio)))

    def fraction_within(self, factor: float) -> float:
        """Share of metrics reproduced within the given factor."""
        if not self.comparisons:
            return 0.0
        hits = sum(1 for c in self.comparisons if c.within_factor(factor))
        return hits / len(self.comparisons)

    def render(self) -> str:
        """The ledger as an aligned text table."""
        rows = [
            [c.metric, c.paper, round(c.measured, 3), round(c.ratio, 3)]
            for c in self.comparisons
        ]
        return format_table(
            self.title, ["metric", "paper", "measured", "ratio"], rows
        )
