"""Figure data rendering: CSV series plus ASCII charts.

The paper's figures are line/bar/heatmap plots; each bench emits the
underlying series as CSV (so any plotting tool can re-draw them) and a
terminal-friendly ASCII rendering for at-a-glance shape checks.
"""

from __future__ import annotations

import io
from typing import Dict, List, Optional, Sequence, Tuple


def series_to_csv(
    header: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """Render rows as CSV text (no quoting needed for our numeric data)."""
    out = io.StringIO()
    out.write(",".join(str(h) for h in header) + "\n")
    for row in rows:
        out.write(",".join(str(c) for c in row) + "\n")
    return out.getvalue()


def ascii_bar_chart(
    title: str,
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 48,
    unit: str = "",
) -> str:
    """Horizontal bar chart with proportional bar lengths."""
    if len(labels) != len(values):
        raise ValueError("labels and values must align")
    peak = max(values) if values else 1.0
    label_width = max((len(l) for l in labels), default=0)
    lines = [title]
    for label, value in zip(labels, values):
        bar = "#" * max(1, int(round(width * value / peak))) if peak > 0 else ""
        lines.append(f"  {label.ljust(label_width)} | {bar} {value:.2f}{unit}")
    return "\n".join(lines)


def ascii_heatmap(
    title: str,
    row_labels: Sequence[str],
    col_labels: Sequence[str],
    values: Sequence[Sequence[float]],
    shades: str = " .:-=+*#%@",
) -> str:
    """Character-shaded heatmap (darker = larger value)."""
    flat = [v for row in values for v in row]
    if not flat:
        return title
    low, high = min(flat), max(flat)
    span = (high - low) or 1.0
    label_width = max(len(l) for l in row_labels)
    cell_width = max(max((len(c) for c in col_labels), default=1), 6)
    lines = [title]
    header = " " * (label_width + 2) + " ".join(
        c.rjust(cell_width) for c in col_labels
    )
    lines.append(header)
    for label, row in zip(row_labels, values):
        cells = []
        for value in row:
            shade = shades[
                min(len(shades) - 1, int((value - low) / span * (len(shades) - 1)))
            ]
            cells.append(f"{shade}{value:5.0f}".rjust(cell_width))
        lines.append(f"{label.ljust(label_width)}  " + " ".join(cells))
    lines.append(f"(range: {low:.1f} .. {high:.1f})")
    return "\n".join(lines)


def ascii_timeline(
    title: str,
    samples: Sequence[Tuple[int, float, float]],
    thread_count: int,
    width: int = 72,
) -> str:
    """Per-thread occupancy timeline from (thread, start, end) samples.

    Each row is one thread; '#' marks time slices where the thread was
    inside an instrumented region (Figure 2's shape).
    """
    if not samples:
        return title
    t0 = min(s[1] for s in samples)
    t1 = max(s[2] for s in samples)
    span = (t1 - t0) or 1.0
    grid = [[" "] * width for _ in range(thread_count)]
    for thread, start, end in samples:
        if not 0 <= thread < thread_count:
            continue
        first = int((start - t0) / span * (width - 1))
        last = max(first, int((end - t0) / span * (width - 1)))
        for x in range(first, last + 1):
            grid[thread][x] = "#"
    lines = [title]
    for thread in range(thread_count):
        lines.append(f"  T{thread:02d} |" + "".join(grid[thread]) + "|")
    lines.append(f"  span: {span * 1000:.1f} ms")
    return "\n".join(lines)
