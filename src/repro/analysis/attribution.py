"""Critical-path attribution: where each request's latency actually went.

:mod:`repro.analysis.tracereport` aggregates spans by *region name*;
this module aggregates them by *request*.  Spans carrying schema-v2
trace context (``trace_id``/``span_id``/``parent_id``; see
:mod:`repro.obs.context`) are grouped into per-request trees, each
span's **self time** (duration minus direct children) is assigned to a
pipeline stage, and the per-stage distributions across requests yield
the report the SLO story needs: "p99 requests spend X% in queue wait,
Y% in extension".

Stages
------

``admission``
    the admission decision (``serve.admission``)
``queue``
    bounded-queue wait (``serve.queue_wait``)
``mapping``
    service/scheduler overhead around the kernels (``serve.request``,
    ``sched.*``, ``proxy.batch`` self time)
``cluster``
    the seed-clustering kernel (``cluster_seeds``)
``extend``
    the seed-and-extend kernel (``process_until_threshold_c``), *minus*
    GBWT decode time
``gbwt``
    GBWT record decode, attributed from the ``gbwt_decode_s`` counter
    each ``proxy.batch`` span carries (per-probe spans would perturb
    the hottest loop in the proxy; decode-time attribution is exact for
    the expensive part and free for cache hits)
``other``
    client-side framing/network (``client.request`` self time) and any
    span the mapping above does not claim

Trace-join completeness
-----------------------

A trace is **joined** when its spans form a single connected tree:
either exactly one root span (no ``parent_id``) and no dangling parent
references, or — for server-only span files, where the client's root
span lives in another process — every dangling reference naming the
same missing parent.  ``completeness`` is the joined fraction of
*result traces* (trees that contain a delivered RESULT); anything
below 1.0 means spans were lost or context propagation broke.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.obs.metrics import percentile_summary
from repro.obs.trace import SpanEvent

__all__ = [
    "AttributionReport",
    "TraceSummary",
    "STAGES",
    "attribute",
    "stage_of",
]

#: Report ordering for the pipeline stages.
STAGES: Tuple[str, ...] = (
    "admission", "queue", "mapping", "cluster", "extend", "gbwt", "other",
)

#: Percentile points of the per-stage report (per acceptance: p50/p99).
STAGE_PERCENTILES: Tuple[float, ...] = (50.0, 99.0)

_STAGE_BY_NAME = {
    "serve.admission": "admission",
    "serve.queue_wait": "queue",
    "cluster_seeds": "cluster",
    "process_until_threshold_c": "extend",
}

#: Share of the slowest traces treated as "the tail" (at least one).
_TAIL_FRACTION = 0.01


def stage_of(name: str) -> str:
    """Map a span name to its pipeline stage (see module docstring)."""
    stage = _STAGE_BY_NAME.get(name)
    if stage is not None:
        return stage
    if name == "serve.request" or name.startswith(("sched.", "proxy.")):
        return "mapping"
    return "other"


@dataclass(frozen=True)
class TraceSummary:
    """One request's tree, reduced to joinedness + per-stage self time."""

    trace_id: str
    joined: bool
    span_count: int
    #: End-to-end seconds: the root span's duration when the tree has a
    #: single root, else the sum of root durations.
    total: float
    #: Stage name -> self-time seconds within this trace.
    stages: Dict[str, float]
    #: True when the tree contains a delivered RESULT (a ``client.request``
    #: with verdict=result, or — server-only traces — an ok
    #: ``serve.request``).
    is_result: bool
    #: True when any span in the tree finished in error status.
    has_error: bool

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready representation."""
        return {
            "trace_id": self.trace_id,
            "joined": self.joined,
            "span_count": self.span_count,
            "total": self.total,
            "stages": dict(self.stages),
            "is_result": self.is_result,
            "has_error": self.has_error,
        }


@dataclass
class AttributionReport:
    """The cross-request attribution summary (see :func:`attribute`)."""

    traces: List[TraceSummary]
    result_traces: int
    joined_traces: int
    completeness: float
    #: Stage -> {"p50": seconds, "p99": seconds} across result traces.
    stage_percentiles: Dict[str, Dict[str, float]]
    #: Stage -> share of total attributed time, across all result traces.
    stage_shares: Dict[str, float]
    #: Stage -> share of attributed time within the slowest-1% traces.
    tail_shares: Dict[str, float]
    #: Worst end-to-end traces: (trace_id, total seconds), slowest first.
    exemplars: List[Tuple[str, float]] = field(default_factory=list)
    #: Spans evicted from the ring buffer before export (corrupts
    #: attribution when nonzero — surfaced loudly in render()).
    dropped_spans: int = 0
    #: Spans with no trace context (schema v1), excluded from trees.
    orphan_spans: int = 0

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready representation (the ``--json`` output)."""
        return {
            "result_traces": self.result_traces,
            "joined_traces": self.joined_traces,
            "completeness": self.completeness,
            "stage_percentiles": {
                stage: dict(pcts)
                for stage, pcts in self.stage_percentiles.items()
            },
            "stage_shares": dict(self.stage_shares),
            "tail_shares": dict(self.tail_shares),
            "exemplars": [
                {"trace_id": trace_id, "total": total}
                for trace_id, total in self.exemplars
            ],
            "dropped_spans": self.dropped_spans,
            "orphan_spans": self.orphan_spans,
            "traces": [summary.to_dict() for summary in self.traces],
        }

    def render(self) -> str:
        """The human-readable attribution report."""
        lines: List[str] = []
        if self.dropped_spans:
            lines.append(
                "!" * 66 + "\n"
                f"!! WARNING: {self.dropped_spans} spans were dropped by the "
                "ring buffer.\n"
                "!! Attribution below is computed from an incomplete trace "
                "set —\n"
                "!! raise --ring-capacity and rerun before trusting it.\n"
                + "!" * 66
            )
        lines.append(
            f"trace-join completeness: {self.completeness * 100.0:.1f}% "
            f"({self.joined_traces}/{self.result_traces} result traces "
            "joined)"
        )
        if self.orphan_spans:
            lines.append(
                f"  ({self.orphan_spans} spans without trace context "
                "excluded)"
            )
        lines.append("")
        lines.append(
            f"{'stage':<10} {'p50':>10} {'p99':>10} {'share':>7} "
            f"{'tail share':>11}"
        )
        for stage in STAGES:
            pcts = self.stage_percentiles.get(stage, {})
            if not pcts and not self.stage_shares.get(stage):
                continue
            lines.append(
                f"{stage:<10} "
                f"{pcts.get('p50', 0.0) * 1000.0:>8.2f}ms "
                f"{pcts.get('p99', 0.0) * 1000.0:>8.2f}ms "
                f"{self.stage_shares.get(stage, 0.0) * 100.0:>6.1f}% "
                f"{self.tail_shares.get(stage, 0.0) * 100.0:>10.1f}%"
            )
        if self.exemplars:
            lines.append("")
            lines.append("slowest requests:")
            for trace_id, total in self.exemplars:
                lines.append(f"  {total * 1000.0:>8.2f}ms  trace={trace_id}")
        return "\n".join(lines)


def _summarize_trace(trace_id: str, spans: List[SpanEvent]) -> TraceSummary:
    """Reduce one trace's spans to a :class:`TraceSummary`."""
    ids = {span.span_id for span in spans if span.span_id is not None}
    children_dur: Dict[str, float] = {}
    for span in spans:
        if span.parent_id is not None and span.parent_id in ids:
            children_dur[span.parent_id] = (
                children_dur.get(span.parent_id, 0.0) + span.duration
            )

    roots = [span for span in spans if span.parent_id is None]
    dangling = {
        span.parent_id for span in spans
        if span.parent_id is not None and span.parent_id not in ids
    }
    if roots:
        joined = len(roots) == 1 and not dangling
        total = roots[0].duration if len(roots) == 1 else sum(
            root.duration for root in roots
        )
    else:
        # Server-only trace: the real root lives in another process.
        # One shared missing parent still means one connected tree.
        joined = len(dangling) == 1
        total = sum(
            span.duration for span in spans
            if span.parent_id in dangling
        )

    stages: Dict[str, float] = {}
    gbwt = 0.0
    for span in spans:
        self_time = span.duration
        if span.span_id is not None:
            self_time -= children_dur.get(span.span_id, 0.0)
        self_time = max(0.0, self_time)
        stage = stage_of(span.name)
        stages[stage] = stages.get(stage, 0.0) + self_time
        decode = span.attrs.get("gbwt_decode_s")
        if isinstance(decode, (int, float)) and decode > 0:
            gbwt += float(decode)
    if gbwt > 0.0:
        # Decode time was measured inside the extension kernel; carve it
        # out so "extend" is pure extension work (clipped at zero — the
        # decode counter can only exceed the extend self-time through
        # clock granularity).
        stages["extend"] = max(0.0, stages.get("extend", 0.0) - gbwt)
        stages["gbwt"] = stages.get("gbwt", 0.0) + gbwt

    is_result = any(
        span.name == "client.request"
        and span.attrs.get("verdict") == "result"
        for span in spans
    )
    if not is_result and not any(
        span.name == "client.request" for span in spans
    ):
        is_result = any(
            span.name == "serve.request" and span.status == "ok"
            for span in spans
        )
    return TraceSummary(
        trace_id=trace_id,
        joined=joined,
        span_count=len(spans),
        total=total,
        stages=stages,
        is_result=is_result,
        has_error=any(span.is_error for span in spans),
    )


def attribute(spans: Iterable[SpanEvent], dropped_spans: int = 0,
              exemplar_count: int = 5) -> AttributionReport:
    """Build the per-request attribution report from finished spans.

    ``dropped_spans`` is the ring buffer's eviction count at export
    time; a nonzero value is surfaced as a loud warning because lost
    spans silently skew every number below.
    """
    by_trace: Dict[str, List[SpanEvent]] = {}
    orphans = 0
    for span in spans:
        if span.trace_id is None:
            orphans += 1
            continue
        by_trace.setdefault(span.trace_id, []).append(span)

    summaries = [
        _summarize_trace(trace_id, trace_spans)
        for trace_id, trace_spans in sorted(by_trace.items())
    ]
    results = [summary for summary in summaries if summary.is_result]
    joined = [summary for summary in results if summary.joined]
    completeness = len(joined) / len(results) if results else 0.0

    stage_samples: Dict[str, List[float]] = {stage: [] for stage in STAGES}
    for summary in results:
        for stage in STAGES:
            stage_samples[stage].append(summary.stages.get(stage, 0.0))
    stage_percentiles = {
        stage: percentile_summary(samples, STAGE_PERCENTILES)
        for stage, samples in stage_samples.items() if samples
    }

    def shares(of: Sequence[TraceSummary]) -> Dict[str, float]:
        totals = {stage: 0.0 for stage in STAGES}
        for summary in of:
            for stage, seconds in summary.stages.items():
                totals[stage] = totals.get(stage, 0.0) + seconds
        grand = sum(totals.values())
        if grand <= 0.0:
            return {}
        return {stage: seconds / grand for stage, seconds in totals.items()}

    slowest = sorted(results, key=lambda summary: -summary.total)
    tail_count = max(1, int(len(slowest) * _TAIL_FRACTION)) if slowest else 0
    return AttributionReport(
        traces=summaries,
        result_traces=len(results),
        joined_traces=len(joined),
        completeness=completeness,
        stage_percentiles=stage_percentiles,
        stage_shares=shares(results),
        tail_shares=shares(slowest[:tail_count]),
        exemplars=[
            (summary.trace_id, summary.total)
            for summary in slowest[:exemplar_count]
        ],
        dropped_spans=dropped_spans,
        orphan_spans=orphans,
    )
