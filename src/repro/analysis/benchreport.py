"""Human-readable rendering of bench reports and validation results.

:mod:`repro.obs.bench` and :mod:`repro.obs.validate` produce plain
dict/dataclass results; this module turns them into the aligned text
tables ``repro bench`` and ``repro validate`` print — the Table V/VI
shape for fidelity, a per-config summary plus baseline deltas for the
bench harness.  Renderers take data, never run anything, so they work
equally on a freshly produced report and one loaded from a
``BENCH_*.json`` on disk.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.analysis.tables import format_table


def _fmt_delta(delta: Optional[float]) -> str:
    return f"{delta:+.1%}" if delta is not None else "-"


def render_bench_report(report: Dict[str, object], comparison=None) -> str:
    """The full bench text report: config summary, regions, deltas.

    ``comparison`` is an optional
    :class:`repro.obs.bench.BaselineComparison`; when given, a delta
    table and a regression verdict line are appended.
    """
    rows = []
    for entry in report.get("configs", []):
        cache = entry.get("cache", {})
        rows.append([
            entry["key"],
            f"{entry['wall_time']:.4f}",
            f"{entry['mapped_reads']}/{entry['read_count']}",
            f"{cache.get('hit_rate', 0.0):.1%}",
            len(entry.get("regions", {})),
        ])
    sections = [format_table(
        f"Bench suite '{report.get('suite', '?')}' "
        f"({len(rows)} configs, schema v{report.get('schema_version')})",
        ["config", "wall_s", "mapped", "cache_hit", "regions"],
        rows,
    )]
    for entry in report.get("configs", []):
        region_rows = [
            [
                name,
                int(stats.get("spans", 0)),
                f"{stats.get('total_s', 0.0):.4f}",
                f"{stats.get('percent', 0.0):.1f}",
                f"{stats.get('p50_ms', 0.0):.3f}",
                f"{stats.get('p90_ms', 0.0):.3f}",
                f"{stats.get('p99_ms', 0.0):.3f}",
            ]
            for name, stats in sorted(
                entry.get("regions", {}).items(),
                key=lambda kv: -kv[1].get("total_s", 0.0),
            )
        ]
        if region_rows:
            sections.append(format_table(
                f"Regions: {entry['key']}",
                ["region", "spans", "total_s", "percent",
                 "p50_ms", "p90_ms", "p99_ms"],
                region_rows,
            ))
    if comparison is not None:
        delta_rows = [
            [
                delta.key,
                delta.status,
                _fmt_delta(delta.wall_time_delta),
                _fmt_delta(max(delta.ops_delta.values()))
                if delta.ops_delta else "-",
                "; ".join(delta.reasons) if delta.reasons else "-",
            ]
            for delta in comparison.deltas
        ]
        sections.append(format_table(
            "Baseline comparison",
            ["config", "status", "wall_dt", "max_ops_dt", "reasons"],
            delta_rows,
        ))
        if comparison.unknown_baseline_keys:
            sections.append(
                "Baseline configs not in this suite (ignored): "
                + ", ".join(comparison.unknown_baseline_keys)
            )
        verdict = (
            f"REGRESSION: {len(comparison.regressions)} config(s) "
            "crossed a threshold"
            if comparison.has_regressions
            else "No regressions against baseline."
        )
        sections.append(verdict)
    return "\n\n".join(sections)


def render_validation_report(result) -> str:
    """The Table V/VI-style fidelity report for one validation run.

    ``result`` is a :class:`repro.obs.validate.ValidationResult` (or
    anything with the same attributes).
    """
    checks = result.checks
    mark = lambda ok: "PASS" if ok else "FAIL"  # noqa: E731
    gate_rows = [
        [
            "extensions bit-identical",
            f"{result.functional.get('extensions_expected', 0)} expected",
            f"{result.functional.get('missing', 0)} missing / "
            f"{result.functional.get('extra', 0)} extra",
            "exact",
            mark(checks["extensions_bit_identical"]),
        ],
        [
            "kernel-counter cosine",
            "1.0",
            f"{result.kernel_cosine:.6f}",
            f">= {result.thresholds.cosine:g}",
            mark(checks["kernel_cosine"]),
        ],
        [
            "hw-counter cosine (sim)",
            "0.9996 (paper)",
            f"{result.hw_cosine:.6f}",
            f">= {result.thresholds.hw_cosine:g}",
            mark(checks["hw_cosine"]),
        ],
        [
            "exec time |dt|",
            "<= 8.7% (paper)",
            f"{result.time_delta:+.1%}",
            f"<= {result.thresholds.time:.1%}",
            mark(checks["exec_time"]),
        ],
    ]
    sections = [format_table(
        f"Proxy fidelity: {result.input_set} (scale {result.scale:g}, "
        f"{result.threads} thread(s), best of {result.repeats})",
        ["gate", "reference", "measured", "threshold", "status"],
        gate_rows,
    )]
    counter_rows = [
        [
            op,
            f"{result.kernel_ops_parent.get(op, 0):g}",
            f"{result.kernel_ops_proxy.get(op, 0):g}",
        ]
        for op in sorted(result.kernel_ops_parent)
    ]
    sections.append(format_table(
        "Kernel counters (software, Table V shape)",
        ["op", "giraffe", "miniGiraffe"],
        counter_rows,
    ))
    sections.append(
        f"Exec time: parent critical region {result.parent_critical_time:.4f}s, "
        f"proxy makespan {result.proxy_makespan:.4f}s "
        f"(delta {result.time_delta:+.2%}); "
        f"hw counters simulated on {result.counter_platform}."
    )
    sections.append(
        "VALIDATION PASSED" if result.passed else "VALIDATION FAILED: "
        + ", ".join(name for name, ok in checks.items() if not ok)
    )
    return "\n\n".join(sections)


__all__ = ["render_bench_report", "render_validation_report"]
