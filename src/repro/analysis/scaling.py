"""Scaling-shape validation: measured worker curves vs the machine model.

The process-pool scheduler's reason to exist is throughput scaling, but
a measured speedup number is only meaningful relative to what the host
could possibly deliver — a 1.0x curve is a bug on a 16-core box and
exactly correct on a 1-core one.  This module closes that loop: it
extracts the measured workers→wall-time curve from a ``repro bench
--parallel`` report, predicts the same curve with the DES-backed
:class:`~repro.sim.exec_model.ExecutionModel` on a host-shaped
:class:`~repro.sim.platform.PlatformSpec`, and gates on *shape
agreement* (relative speedups within a tolerance), not on absolute
seconds.

The model predicts with effective threads capped at the platform's
``max_threads``: hardware cannot run more concurrent threads than it
has, so extra workers beyond that add time-slicing, not parallelism —
the model's SMT formula would otherwise credit oversubscribed workers
with full-rate cores.  On a 1-core host every predicted speedup is
therefore ~1.0x, and a flat measured curve *passes*.

Oversubscribed points (``workers > max_threads``) gate **one-sided**:
a measured speedup the hardware cannot produce still fails, but a
measured *slowdown* there is expected — context switching, worker
spawn, and IPC contention are real costs the capped model deliberately
does not predict.  Within the hardware's thread budget the gate stays
two-sided, so a flat curve on a 64-core box fails; see
``docs/PARALLELISM.md`` ("Scaling honesty").
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.sim.exec_model import ExecutionModel, TuningConfig
from repro.sim.platform import PlatformSpec, host_platform_spec


@dataclass(frozen=True)
class ScalingPoint:
    """One worker count on a scaling curve."""

    workers: int
    wall_time: float
    #: Throughput relative to the curve's 1-worker point.
    speedup: float


@dataclass
class ScalingValidation:
    """Outcome of comparing a measured curve against the model's."""

    platform: str
    cpu_count: int
    measured: List[ScalingPoint] = field(default_factory=list)
    predicted: List[ScalingPoint] = field(default_factory=list)
    #: Per-worker-count relative deviation of measured vs predicted speedup.
    deviations: Dict[int, float] = field(default_factory=dict)
    tolerance: float = 0.5
    #: Worker counts beyond the platform's hardware threads — these
    #: gate one-sided (only impossible speedups fail, slowdowns pass).
    oversubscribed: List[int] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def point_ok(self, workers: int) -> bool:
        """Whether one worker count's deviation passes the gate."""
        deviation = self.deviations[workers]
        if workers in self.oversubscribed:
            return deviation <= self.tolerance
        return abs(deviation) <= self.tolerance

    @property
    def ok(self) -> bool:
        """True when every common point's shape deviation is in tolerance."""
        return all(self.point_ok(workers) for workers in self.deviations)

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready representation (for machine-readable CI logs)."""
        return {
            "platform": self.platform,
            "cpu_count": self.cpu_count,
            "tolerance": self.tolerance,
            "ok": self.ok,
            "measured": [
                {"workers": p.workers, "wall_time": p.wall_time,
                 "speedup": p.speedup}
                for p in self.measured
            ],
            "predicted": [
                {"workers": p.workers, "wall_time": p.wall_time,
                 "speedup": p.speedup}
                for p in self.predicted
            ],
            "deviations": {str(k): v for k, v in self.deviations.items()},
            "oversubscribed": list(self.oversubscribed),
            "notes": list(self.notes),
        }

    def render(self) -> str:
        """Plain-text report table."""
        lines = [
            f"scaling shape vs model ({self.platform}, "
            f"{self.cpu_count} core(s), tolerance {self.tolerance:.0%})"
        ]
        predicted = {p.workers: p for p in self.predicted}
        for point in self.measured:
            model = predicted.get(point.workers)
            deviation = self.deviations.get(point.workers)
            parts = [
                f"  w{point.workers}: measured {point.wall_time:.3f}s "
                f"({point.speedup:.2f}x)"
            ]
            if model is not None:
                parts.append(f"model {model.speedup:.2f}x")
            if deviation is not None:
                if self.point_ok(point.workers):
                    flag = ("ok, oversubscribed"
                            if point.workers in self.oversubscribed
                            else "ok")
                else:
                    flag = "DEVIANT"
                parts.append(f"delta {deviation:+.1%} [{flag}]")
            lines.append(" ".join(parts))
        lines.extend(f"  note: {note}" for note in self.notes)
        lines.append(f"  verdict: {'OK' if self.ok else 'SHAPE MISMATCH'}")
        return "\n".join(lines)


def _curve(points: Dict[int, float]) -> List[ScalingPoint]:
    """Wall-time dict → speedup curve normalized to its 1-worker point."""
    if not points:
        return []
    base_workers = min(points)
    base = points[base_workers]
    return [
        ScalingPoint(
            workers=workers,
            wall_time=wall,
            speedup=(base / wall) if wall > 0 else 0.0,
        )
        for workers, wall in sorted(points.items())
    ]


def measured_worker_curve(report: Dict[str, object]) -> Dict[int, float]:
    """Extract workers → best wall time from a bench report.

    Only process-pool entries (``config.workers > 0``) join the curve;
    multiple entries at one worker count keep the best time (the
    standard best-of-N reduction across configs).
    """
    points: Dict[int, float] = {}
    for entry in report.get("configs", []):
        config = entry.get("config") or {}
        workers = int(config.get("workers", 0) or 0)
        wall = entry.get("wall_time")
        if workers > 0 and wall is not None:
            points[workers] = min(points.get(workers, float("inf")), wall)
    return points


def predicted_worker_curve(
    profile,
    worker_counts,
    platform: Optional[PlatformSpec] = None,
    config: Optional[TuningConfig] = None,
) -> Dict[int, float]:
    """Model-predicted workers → makespan on ``platform``.

    Effective model threads are ``min(workers, platform.max_threads)``:
    the DES models concurrency the hardware can actually run, and
    worker processes beyond that only time-slice.
    """
    platform = platform or host_platform_spec()
    config = config or TuningConfig()
    model = ExecutionModel(profile, platform)
    points: Dict[int, float] = {}
    for workers in worker_counts:
        effective = max(1, min(workers, platform.max_threads))
        points[workers] = model.makespan(
            TuningConfig(
                scheduler=config.scheduler,
                batch_size=config.batch_size,
                cache_capacity=config.cache_capacity,
                threads=effective,
            )
        )
    return points


def validate_scaling(
    measured: Dict[int, float],
    predicted: Dict[int, float],
    platform: Optional[PlatformSpec] = None,
    tolerance: float = 0.5,
) -> ScalingValidation:
    """Gate the measured curve's *shape* against the model's.

    Both curves are normalized to their own smallest worker count, then
    compared point-wise as relative speedups — absolute seconds never
    enter (the synthetic workload's model calibration is not the
    reproduction target, the scaling shape is).  ``tolerance`` bounds
    ``measured_speedup / predicted_speedup - 1`` per point, two-sided
    within the platform's hardware thread budget and one-sided (upper
    bound only) for oversubscribed worker counts.
    """
    platform = platform or host_platform_spec()
    validation = ScalingValidation(
        platform=platform.name,
        cpu_count=os.cpu_count() or 1,
        measured=_curve(measured),
        predicted=_curve(predicted),
        tolerance=tolerance,
    )
    predicted_by_workers = {p.workers: p for p in validation.predicted}
    for point in validation.measured:
        model = predicted_by_workers.get(point.workers)
        if model is None or model.speedup <= 0:
            continue
        validation.deviations[point.workers] = (
            point.speedup / model.speedup - 1.0
        )
    if not validation.deviations:
        validation.notes.append(
            "no common worker counts between measured and predicted curves"
        )
    capped = sorted(w for w in measured if w > platform.max_threads)
    if capped:
        validation.oversubscribed = capped
        validation.notes.append(
            f"worker counts {capped} exceed the platform's "
            f"{platform.max_threads} hardware thread(s); the model "
            f"predicts no speedup there, and slowdowns (time-slicing, "
            f"spawn and IPC contention) gate one-sided"
        )
    return validation
