"""Plain-text table rendering with aligned columns."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Sequence


@dataclass
class Table:
    """A titled table: header row plus data rows."""

    title: str
    header: List[str]
    rows: List[List[Any]] = field(default_factory=list)

    def add_row(self, *cells: Any) -> None:
        """Append one row; cell count must match the header."""
        if len(cells) != len(self.header):
            raise ValueError(
                f"row has {len(cells)} cells, header has {len(self.header)}"
            )
        self.rows.append(list(cells))

    def render(self) -> str:
        """The table as aligned plain text."""
        return format_table(self.title, self.header, self.rows)


def _cell_text(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def format_table(
    title: str,
    header: Sequence[str],
    rows: Sequence[Sequence[Any]],
    min_width: int = 6,
) -> str:
    """Render an aligned, boxed plain-text table."""
    texts = [[_cell_text(c) for c in row] for row in rows]
    widths = [max(min_width, len(h)) for h in header]
    for row in texts:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    divider = "+" + "+".join("-" * (w + 2) for w in widths) + "+"
    lines = [title, divider]
    lines.append(
        "| " + " | ".join(h.ljust(w) for h, w in zip(header, widths)) + " |"
    )
    lines.append(divider)
    for row in texts:
        lines.append(
            "| " + " | ".join(c.rjust(w) for c, w in zip(row, widths)) + " |"
        )
    lines.append(divider)
    return "\n".join(lines)
