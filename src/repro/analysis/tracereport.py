"""Per-region breakdown reports from structured trace spans.

Turns the JSONL span stream of :mod:`repro.obs.trace` into the table
the paper's Figure 3 (percentage of runtime per region) and Table IV
(per-region contributions feeding the top-down analysis) are built
from: for each region, the span count, total wall-clock time, mean
time, cumulative CPU time, and the share of total instrumented time.

Span-name convention: *structural* spans are namespaced with a dot
(``proxy.batch``, ``sched.dynamic``, ``giraffe.map_all``) and are
excluded from the breakdown so enclosing wrappers don't double-count
their children; bare names (``cluster_seeds``,
``process_until_threshold_c``) are measurement regions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from repro.analysis.tables import format_table
from repro.obs.trace import SpanEvent, load_spans_jsonl


@dataclass(frozen=True)
class RegionStats:
    """Aggregate statistics for one instrumented region."""

    region: str
    spans: int
    total: float
    cpu: float
    percent: float

    @property
    def mean(self) -> float:
        """Mean wall-clock seconds per span."""
        return self.total / self.spans if self.spans else 0.0


def is_region_span(span: SpanEvent) -> bool:
    """True for measurement regions (bare names, no ``.`` namespace)."""
    return "." not in span.name


def region_breakdown(
    spans: Iterable[SpanEvent],
    regions: Optional[Sequence[str]] = None,
) -> List[RegionStats]:
    """Aggregate spans into per-region statistics, largest share first.

    ``regions`` restricts the breakdown to the named regions; by default
    every non-structural span (see :func:`is_region_span`) contributes.
    Percentages are of the total *included* wall-clock time, matching
    how Figure 3 normalizes per-region shares.
    """
    wanted = set(regions) if regions is not None else None
    totals: Dict[str, List[float]] = {}
    for span in spans:
        if wanted is not None:
            if span.name not in wanted:
                continue
        elif not is_region_span(span):
            continue
        entry = totals.setdefault(span.name, [0, 0.0, 0.0])
        entry[0] += 1
        entry[1] += span.duration
        entry[2] += span.cpu
    grand = sum(entry[1] for entry in totals.values())
    stats = [
        RegionStats(
            region=name,
            spans=int(entry[0]),
            total=entry[1],
            cpu=entry[2],
            percent=(100.0 * entry[1] / grand) if grand else 0.0,
        )
        for name, entry in totals.items()
    ]
    stats.sort(key=lambda s: (-s.total, s.region))
    return stats


def render_region_table(
    spans: Iterable[SpanEvent],
    title: str = "Per-region breakdown (Figure 3 shape)",
    regions: Optional[Sequence[str]] = None,
) -> str:
    """Render the per-region breakdown as an aligned text table."""
    rows = [
        [
            stats.region,
            stats.spans,
            f"{stats.total:.4f}",
            f"{stats.mean * 1e3:.3f}",
            f"{stats.cpu:.4f}",
            f"{stats.percent:.1f}",
        ]
        for stats in region_breakdown(spans, regions=regions)
    ]
    return format_table(
        title,
        ["region", "spans", "total_s", "mean_ms", "cpu_s", "percent"],
        rows,
    )


def render_worker_table(
    spans: Iterable[SpanEvent],
    title: str = "Per-worker batch activity",
) -> str:
    """Render per-worker span counts and busy time (``proxy.batch`` etc.)."""
    per_worker: Dict[int, List[float]] = {}
    for span in spans:
        if is_region_span(span) or span.worker is None:
            continue
        entry = per_worker.setdefault(span.worker, [0, 0.0])
        entry[0] += 1
        entry[1] += span.duration
    rows = [
        [worker, int(entry[0]), f"{entry[1]:.4f}"]
        for worker, entry in sorted(per_worker.items())
    ]
    return format_table(title, ["worker", "batches", "busy_s"], rows)


def error_summary(spans: Iterable[SpanEvent]) -> Dict[str, int]:
    """Count error-status spans/events per name (empty on a clean run)."""
    counts: Dict[str, int] = {}
    for span in spans:
        if span.is_error:
            counts[span.name] = counts.get(span.name, 0) + 1
    return counts


def render_error_summary(spans: Iterable[SpanEvent]) -> str:
    """Render error-status span counts, or an empty string when clean.

    Covers the failure events the resilience layer emits
    (``sched.quarantine``, ``sched.watchdog``, ``sched.batch_error``)
    as well as any span whose body raised.
    """
    counts = error_summary(spans)
    if not counts:
        return ""
    lines = [
        f"  {name:28s} {count}"
        for name, count in sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))
    ]
    return "Error spans:\n" + "\n".join(lines)


def render_dropped_warning(dropped_spans: int) -> str:
    """The loud banner shown whenever the span ring buffer overflowed.

    Dropped spans silently understate every region total and break
    trace-join completeness, so the condition is never allowed to hide
    in a metrics line — it headlines the report.
    """
    if not dropped_spans:
        return ""
    bar = "!" * 66
    return "\n".join([
        bar,
        f"!! WARNING: {dropped_spans} spans dropped (ring buffer full).",
        "!! Totals and trace trees below are incomplete; raise the ring",
        "!! capacity (--ring-capacity / Tracer(capacity=...)) and rerun.",
        bar,
    ])


def render_trace_report(
    spans: Iterable[SpanEvent],
    registry=None,
    metric_prefixes: Sequence[str] = ("gbwt_cache_", "sched_", "proxy_"),
    dropped_spans: int = 0,
) -> str:
    """The full text report: region table, worker table, errors, metrics.

    ``registry`` is a :class:`repro.obs.metrics.MetricsRegistry`; only
    metrics whose names start with one of ``metric_prefixes`` are
    included.  Histogram bucket detail is elided to ``_sum``/``_count``
    plus a p50/p90/p99 summary line per series (estimated by
    :meth:`repro.obs.metrics.Histogram.percentiles`).  An error-span
    section appears only when the run recorded failures.
    ``dropped_spans`` (``Tracer.ring.dropped`` at export time) prepends
    the :func:`render_dropped_warning` banner when nonzero.
    """
    from repro.obs.metrics import Histogram

    spans = list(spans)
    sections = []
    warning = render_dropped_warning(dropped_spans)
    if warning:
        sections.append(warning)
    sections.append(render_region_table(spans))
    worker_table = render_worker_table(spans)
    if worker_table.count("\n") > 3:
        sections.append(worker_table)
    errors = render_error_summary(spans)
    if errors:
        sections.append(errors)
    if registry is not None:
        lines = [
            line
            for line in registry.dump().splitlines()
            if not line.startswith("#")
            and line.startswith(tuple(metric_prefixes))
            and "_bucket{" not in line
        ]
        for name in registry.names():
            metric = registry.get(name)
            if not isinstance(metric, Histogram):
                continue
            if not name.startswith(tuple(metric_prefixes)):
                continue
            for series in metric.snapshot():
                labels = series["labels"]
                summary = metric.percentiles(**labels)
                if not summary:
                    continue
                label_text = ",".join(
                    f'{k}="{v}"' for k, v in sorted(labels.items())
                )
                body = " ".join(f"{k}={v:.3g}" for k, v in summary.items())
                lines.append(
                    f"{name}_quantiles"
                    + (f"{{{label_text}}}" if label_text else "")
                    + f" {body}"
                )
        if lines:
            sections.append("Key metrics:\n" + "\n".join(
                f"  {line}" for line in lines
            ))
    return "\n\n".join(sections)


__all__ = [
    "RegionStats",
    "error_summary",
    "is_region_span",
    "load_spans_jsonl",
    "region_breakdown",
    "render_dropped_warning",
    "render_error_summary",
    "render_region_table",
    "render_worker_table",
    "render_trace_report",
]
