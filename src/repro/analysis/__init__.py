"""Result rendering: the tables and figure data of the paper.

Every benchmark regenerates its table/figure through these formatters,
which emit plain-text tables (for terminals and the EXPERIMENTS.md log)
and CSV series (the artifact's ``results/`` shape) — the Python stand-in
for the paper's Rscript plotting pipeline.
"""

from repro.analysis.tables import format_table, Table
from repro.analysis.figures import (
    ascii_bar_chart,
    ascii_heatmap,
    ascii_timeline,
    series_to_csv,
)
from repro.analysis.report import speedup_series, percent_diff
from repro.analysis.threads import UtilizationReport, analyze_traces
from repro.analysis.fidelity import Comparison, FidelityReport
from repro.analysis.benchreport import (
    render_bench_report,
    render_validation_report,
)
from repro.analysis.tracereport import (
    region_breakdown,
    render_region_table,
    render_trace_report,
)
from repro.analysis.tunereport import render_tune_report
from repro.analysis.scaling import (
    ScalingPoint,
    ScalingValidation,
    measured_worker_curve,
    predicted_worker_curve,
    validate_scaling,
)

__all__ = [
    "ScalingPoint",
    "ScalingValidation",
    "measured_worker_curve",
    "predicted_worker_curve",
    "validate_scaling",
    "render_bench_report",
    "render_validation_report",
    "region_breakdown",
    "render_region_table",
    "render_trace_report",
    "UtilizationReport",
    "analyze_traces",
    "Comparison",
    "FidelityReport",
    "format_table",
    "Table",
    "ascii_bar_chart",
    "ascii_heatmap",
    "ascii_timeline",
    "series_to_csv",
    "speedup_series",
    "percent_diff",
    "render_tune_report",
]
