"""Legacy setup shim.

Kept so ``pip install -e .`` works in offline environments where the
``wheel`` package (required by PEP 660 editable installs) is absent;
all real metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
