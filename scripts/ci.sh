#!/usr/bin/env bash
# Tier-1 CI gate: the fast test suite plus the docstring-coverage check.
#
# Usage: ./scripts/ci.sh [--bench-smoke] [--chaos-smoke]
# Extra pytest arguments are passed through, e.g.:
#   ./scripts/ci.sh -k obs
#
# --bench-smoke additionally runs the smoke benchmark suite and the
# proxy-fidelity validation gate (ISSUE 2) after the tier-1 tests:
#   repro bench --smoke     (regression gate against benchmarks/baseline.json)
#   repro validate --smoke  (cosine / exec-time / bit-identical checks)
#
# --chaos-smoke additionally runs the fault-injection gate: two seeded
# `repro chaos` runs per scheduler must satisfy the exactly-once
# invariant and produce byte-identical reports (determinism check).
#
# Benchmarks (paper regeneration) are intentionally excluded — run them
# separately with: PYTHONPATH=src python -m pytest benchmarks/ -q
set -euo pipefail

cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

BENCH_SMOKE=0
CHAOS_SMOKE=0
args=()
for arg in "$@"; do
    if [[ "$arg" == "--bench-smoke" ]]; then
        BENCH_SMOKE=1
    elif [[ "$arg" == "--chaos-smoke" ]]; then
        CHAOS_SMOKE=1
    else
        args+=("$arg")
    fi
done

echo "== tier-1 tests =="
python -m pytest -x -q "${args[@]+"${args[@]}"}"

echo "== docstring coverage (repro.obs, repro.sched, repro.analysis, repro.resilience) =="
python -m repro.util.doccheck src/repro/obs src/repro/sched src/repro/analysis src/repro/resilience

if [[ "$BENCH_SMOKE" == "1" ]]; then
    echo "== bench smoke (regression gate) =="
    bench_out="$(mktemp -d)"
    trap 'rm -rf "$bench_out"' EXIT
    python -m repro bench --smoke --out-dir "$bench_out"

    echo "== validate smoke (proxy-fidelity gate) =="
    python -m repro validate --smoke
fi

if [[ "$CHAOS_SMOKE" == "1" ]]; then
    echo "== chaos smoke (exactly-once + determinism gate) =="
    chaos_out="$(mktemp -d)"
    trap 'rm -rf "${bench_out:-}" "$chaos_out"' EXIT
    for sched in static dynamic work_stealing; do
        echo "-- scheduler: $sched"
        python -m repro chaos --seed 7 --scheduler "$sched" \
            --json "$chaos_out/$sched-1.json"
        python -m repro chaos --seed 7 --scheduler "$sched" \
            --json "$chaos_out/$sched-2.json" > /dev/null
        diff "$chaos_out/$sched-1.json" "$chaos_out/$sched-2.json" \
            || { echo "chaos report not deterministic for $sched"; exit 1; }
    done
    echo "-- fail-fast propagation"
    python -m repro chaos --seed 7 --policy fail_fast > /dev/null
    echo "-- corrupt-input quarantine"
    python -m repro chaos --seed 7 --corrupt > /dev/null
    echo "chaos smoke OK"
fi
