#!/usr/bin/env bash
# Tier-1 CI gate: the fast test suite plus the docstring-coverage check.
#
# Usage: ./scripts/ci.sh [--lint] [--bench-smoke] [--tune-smoke]
#                        [--chaos-smoke] [--serve-smoke] [--trace-smoke]
#                        [--crash-smoke] [--parallel-smoke]
# Extra pytest arguments are passed through, e.g.:
#   ./scripts/ci.sh -k obs
#
# --lint additionally runs the full static/dynamic analysis gate
# (ISSUE 4): `repro lint` over src/repro and tests/ frozen against the
# committed baseline (qa/lint_baseline.json — new findings AND stale
# baseline entries both fail), the race-detector self-check
# (`repro races --demo-racy` must flag the racy fixture), and the
# lockset audits over the three schedulers, the chaos harness, and the
# proxy's CachedGBWT (`repro races` must report CLEAN).
#
# --bench-smoke additionally runs the smoke benchmark suite and the
# proxy-fidelity validation gate (ISSUE 2) after the tier-1 tests:
#   repro bench --smoke     (regression gate against benchmarks/baseline.json)
#   repro validate --smoke  (cosine / exec-time / bit-identical checks)
#
# --tune-smoke additionally runs the measured autotuner on its 2x2x2
# mini-grid (ISSUE 5): `repro tune --measured --smoke` must complete and
# print the Table VIII-style best-config report, keeping the sweep
# machinery exercised on every CI run that asks for it.
#
# --chaos-smoke additionally runs the fault-injection gate: two seeded
# `repro chaos` runs per scheduler must satisfy the exactly-once
# invariant and produce byte-identical reports (determinism check).
#
# --serve-smoke additionally runs the service gate (ISSUE 6): a live
# `repro serve` instance on an ephemeral port must map a streamed
# two-tenant workload exactly-once (every `repro submit` completeness
# report clean), emit an SLO report with per-tenant p50/p99 latency
# percentiles, and survive a `repro chaos --serve` fault soak with
# quarantined requests parked in the dead-letter queue.
#
# --crash-smoke additionally runs the crash-only serving gate (ISSUE 8):
# `repro chaos --serve --crash` kills supervised workers mid-load,
# crashes the service without draining, restarts it over the write-ahead
# journal (with a deliberately torn tail appended), and asserts
# exactly-once completeness, byte-identical extension digests against a
# fault-free baseline, duplicate suppression for pre-crash completions,
# and that an already-expired deadline is rejected finally (no retry).
#
# --parallel-smoke additionally runs the process-pool gate (ISSUE 10):
# the same workload is mapped through the in-process thread schedulers
# and through a 2-worker shared-memory process pool, the two extension
# files must be byte-identical, and no repro_shm_* segment may remain
# in /dev/shm afterwards (leak-freedom even across worker restarts).
#
# --trace-smoke additionally runs the causal-tracing gate (ISSUE 7): an
# in-process served two-tenant workload under `repro trace --serve
# --attribute` must reach 100% trace-join completeness (the command
# exits non-zero below that), its JSON attribution report must parse
# and carry per-stage percentiles, and `repro profile` must produce a
# non-empty collapsed-stack file.
#
# Benchmarks (paper regeneration) are intentionally excluded — run them
# separately with: PYTHONPATH=src python -m pytest benchmarks/ -q
set -euo pipefail

cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

LINT=0
BENCH_SMOKE=0
TUNE_SMOKE=0
CHAOS_SMOKE=0
SERVE_SMOKE=0
TRACE_SMOKE=0
CRASH_SMOKE=0
PARALLEL_SMOKE=0
args=()
for arg in "$@"; do
    if [[ "$arg" == "--lint" ]]; then
        LINT=1
    elif [[ "$arg" == "--bench-smoke" ]]; then
        BENCH_SMOKE=1
    elif [[ "$arg" == "--tune-smoke" ]]; then
        TUNE_SMOKE=1
    elif [[ "$arg" == "--chaos-smoke" ]]; then
        CHAOS_SMOKE=1
    elif [[ "$arg" == "--serve-smoke" ]]; then
        SERVE_SMOKE=1
    elif [[ "$arg" == "--trace-smoke" ]]; then
        TRACE_SMOKE=1
    elif [[ "$arg" == "--crash-smoke" ]]; then
        CRASH_SMOKE=1
    elif [[ "$arg" == "--parallel-smoke" ]]; then
        PARALLEL_SMOKE=1
    else
        args+=("$arg")
    fi
done

# Bench regression thresholds: wall time is machine-dependent, so the
# smoke gate allows 50% noise; kernel operation counts are deterministic
# and gate at 10% growth.
BENCH_TIME_THRESHOLD=0.5
BENCH_OPS_THRESHOLD=0.10

echo "== tier-1 tests =="
python -m pytest -x -q "${args[@]+"${args[@]}"}"

# Docstring coverage is now a lint rule (missing-docstring) behind the
# unified entry point; this always-on step replaces the old standalone
# `python -m repro.util.doccheck` invocation and gates the same packages
# (plus repro.qa itself — see DOC_DIRS in src/repro/qa/rules.py).
echo "== docstring coverage (missing-docstring rule via repro lint) =="
python -m repro lint --rules missing-docstring --no-baseline src/repro

if [[ "$LINT" == "1" ]]; then
    echo "== lint (full rule set, baseline-frozen) =="
    python -m repro lint

    echo "== race detector self-check (racy fixture must be flagged) =="
    python -m repro races --demo-racy

    echo "== lockset audits (schedulers + chaos + proxy must be clean) =="
    python -m repro races

    echo "== docs-drift gate (CLI surface must be documented) =="
    python -m repro docs
fi

if [[ "$BENCH_SMOKE" == "1" ]]; then
    echo "== bench smoke (regression gate) =="
    bench_out="$(mktemp -d)"
    trap 'rm -rf "$bench_out"' EXIT
    python -m repro bench --smoke --out-dir "$bench_out" \
        --threshold "$BENCH_TIME_THRESHOLD" \
        --ops-threshold "$BENCH_OPS_THRESHOLD"

    echo "== validate smoke (proxy-fidelity gate) =="
    python -m repro validate --smoke
fi

if [[ "$TUNE_SMOKE" == "1" ]]; then
    echo "== tune smoke (2x2x2 measured mini-sweep) =="
    python -m repro tune --input-set A-human --measured --smoke
fi

if [[ "$CHAOS_SMOKE" == "1" ]]; then
    echo "== chaos smoke (exactly-once + determinism gate) =="
    chaos_out="$(mktemp -d)"
    trap 'rm -rf "${bench_out:-}" "$chaos_out"' EXIT
    for sched in static dynamic work_stealing; do
        echo "-- scheduler: $sched"
        python -m repro chaos --seed 7 --scheduler "$sched" \
            --json "$chaos_out/$sched-1.json"
        python -m repro chaos --seed 7 --scheduler "$sched" \
            --json "$chaos_out/$sched-2.json" > /dev/null
        diff "$chaos_out/$sched-1.json" "$chaos_out/$sched-2.json" \
            || { echo "chaos report not deterministic for $sched"; exit 1; }
    done
    echo "-- fail-fast propagation"
    python -m repro chaos --seed 7 --policy fail_fast > /dev/null
    echo "-- corrupt-input quarantine"
    python -m repro chaos --seed 7 --corrupt > /dev/null
    echo "chaos smoke OK"
fi

if [[ "$SERVE_SMOKE" == "1" ]]; then
    echo "== serve smoke (live service: completeness + SLO gate) =="
    serve_out="$(mktemp -d)"
    serve_pid=""
    cleanup_serve() {
        [[ -n "$serve_pid" ]] && kill "$serve_pid" 2>/dev/null || true
        rm -rf "${bench_out:-}" "${chaos_out:-}" "$serve_out"
    }
    trap cleanup_serve EXIT
    python -m repro serve --input-set A-human --scale 0.05 \
        --port 0 --port-file "$serve_out/port" --slo-interval 0 \
        --dlq-spool "$serve_out/dead.jsonl" &
    serve_pid=$!

    echo "-- tenant alice: 4 requests, poisson open-loop"
    python -m repro submit --port-file "$serve_out/port" --tenant alice \
        --input-set A-human --scale 0.05 --requests 4 --batch-reads 4 \
        --process poisson --rate 200 --seed 1
    echo "-- tenant bob: 4 requests + SLO report"
    python -m repro submit --port-file "$serve_out/port" --tenant bob \
        --input-set A-human --scale 0.05 --requests 4 --batch-reads 4 \
        --process uniform --rate 200 --seed 2 --stats \
        | tee "$serve_out/stats.txt"
    for field in alice bob p50 p99 rejection_rate dead_letter_rate; do
        grep -q "$field" "$serve_out/stats.txt" \
            || { echo "SLO report missing field: $field"; exit 1; }
    done
    echo "-- dead-letter queue inspectable"
    python -m repro dlq --port-file "$serve_out/port" --inspect > /dev/null
    echo "-- orderly shutdown"
    python -m repro submit --port-file "$serve_out/port" --tenant bob \
        --requests 0 --shutdown > /dev/null
    wait "$serve_pid"
    serve_pid=""

    echo "-- chaos soak under live traffic (repro chaos --serve)"
    python -m repro chaos --serve --input-set A-human --scale 0.05 \
        --seed 0 --tenants 2 --requests 6 --batch-reads 4
    echo "serve smoke OK"
fi

if [[ "$CRASH_SMOKE" == "1" ]]; then
    echo "== crash smoke (crash-only serving: journal recovery gate) =="
    crash_out="$(mktemp -d)"
    trap 'rm -rf "${bench_out:-}" "${chaos_out:-}" "${serve_out:-}" "$crash_out"' EXIT
    python -m repro chaos --serve --crash --input-set A-human --scale 0.05 \
        --seed 0 --requests 12 --batch-reads 4 --workers 2 \
        --journal "$crash_out/requests.journal" \
        --json "$crash_out/crash.json"
    python - "$crash_out/crash.json" <<'PY'
import json, sys
report = json.load(open(sys.argv[1]))
assert report["ok"] is True, report
assert report["recovery"]["truncated_records"] == 1, report["recovery"]
restarts = report["worker_restarts"]
assert restarts["phase_a"] + restarts["phase_b"] > 0, restarts
assert report["deadline_probe"] == "expired-final", report["deadline_probe"]
print("crash JSON OK "
      f"({report['requests']} requests, crashed after "
      f"{report['crash_after']} verdicts, "
      f"{restarts['phase_a'] + restarts['phase_b']} worker restarts)")
PY
    echo "crash smoke OK"
fi

if [[ "$PARALLEL_SMOKE" == "1" ]]; then
    echo "== parallel smoke (process pool: bit-identity + shm leak gate) =="
    par_out="$(mktemp -d)"
    trap 'rm -rf "${bench_out:-}" "${chaos_out:-}" "${serve_out:-}" "${crash_out:-}" "$par_out"' EXIT
    python -m repro generate --input-set A-human --scale 0.05 \
        --out-dir "$par_out"

    echo "-- threaded run (2 threads)"
    python -m repro map --gbz "$par_out/A-human.gbz" \
        --seeds "$par_out/A-human.seeds.bin" --seed-span 13 \
        --threads 2 --batch-size 8 --output "$par_out/threaded.ext"

    echo "-- process-pool run (2 workers over shared memory)"
    python -m repro map --gbz "$par_out/A-human.gbz" \
        --seeds "$par_out/A-human.seeds.bin" --seed-span 13 \
        --workers 2 --batch-size 8 --output "$par_out/pooled.ext"

    echo "-- extension files must be byte-identical"
    cmp "$par_out/threaded.ext" "$par_out/pooled.ext" \
        || { echo "process-pool output differs from threaded output"; exit 1; }

    echo "-- no leaked shared-memory segments"
    python - <<'PY'
from repro.graph.shm import active_segments
leaked = active_segments()
assert not leaked, f"leaked shared-memory segments: {leaked}"
print("no repro_shm_* segments remain")
PY
    echo "parallel smoke OK"
fi

if [[ "$TRACE_SMOKE" == "1" ]]; then
    echo "== trace smoke (causal tracing + attribution gate) =="
    trace_out="$(mktemp -d)"
    trap 'rm -rf "${bench_out:-}" "${chaos_out:-}" "${serve_out:-}" "$trace_out"' EXIT

    echo "-- served two-tenant workload, 100% trace-join completeness"
    python -m repro trace --input-set A-human --scale 0.05 --serve \
        --attribute --tenants 2 --requests 6 --batch-reads 4 \
        --out "$trace_out/spans.jsonl" --json "$trace_out/attribution.json"

    echo "-- attribution JSON parses and carries per-stage percentiles"
    python - "$trace_out/attribution.json" <<'PY'
import json, sys
report = json.load(open(sys.argv[1]))
assert report["completeness"] == 1.0, report["completeness"]
assert report["result_traces"] > 0
for stage in ("admission", "queue", "mapping", "cluster", "extend"):
    pcts = report["stage_percentiles"][stage]
    assert "p50" in pcts and "p99" in pcts, (stage, pcts)
print("attribution JSON OK "
      f"({report['result_traces']} traces, "
      f"completeness={report['completeness']:.2f})")
PY

    echo "-- span file re-attributes identically"
    python -m repro trace --spans "$trace_out/spans.jsonl" --attribute \
        > /dev/null

    echo "-- sampling profiler produces collapsed stacks"
    python -m repro profile --input-set A-human --scale 0.05 \
        --out "$trace_out/profile.collapsed" --top 5
    [[ -s "$trace_out/profile.collapsed" ]] \
        || { echo "profile.collapsed is empty"; exit 1; }
    echo "trace smoke OK"
fi
