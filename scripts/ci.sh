#!/usr/bin/env bash
# Tier-1 CI gate: the fast test suite plus the docstring-coverage check.
#
# Usage: ./scripts/ci.sh
# Extra pytest arguments are passed through, e.g.:
#   ./scripts/ci.sh -k obs
#
# Benchmarks (paper regeneration) are intentionally excluded — run them
# separately with: PYTHONPATH=src python -m pytest benchmarks/ -q
set -euo pipefail

cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1 tests =="
python -m pytest -x -q "$@"

echo "== docstring coverage (repro.obs, repro.sched) =="
python -m repro.util.doccheck src/repro/obs src/repro/sched
